//! `simctl top`: a polling terminal dashboard over the daemon's live
//! metrics.
//!
//! Each tick sends `{"op":"metrics"}` to the daemon, parses the
//! registry snapshot out of the reply, and redraws a compact summary:
//! request throughput and outcomes, admission pressure, warm-vs-cold
//! engine reuse (including sticky-routing wins), queue-wait and
//! execute latency quantiles, per-worker busy ratios, and the
//! engine/PDES totals underneath it all. Rates and busy ratios come
//! from deltas between consecutive polls.
//!
//! `--once` prints a single plain snapshot (no ANSI control codes) and
//! exits — that mode is what CI archives as an artifact.

use crate::client::{request, ClientOpts};
use crate::parse::{parse, Value};
use std::collections::BTreeMap;
use std::io::Write;
use std::time::{Duration, Instant};

/// Dashboard options (see `simctl top --help` via the usage text).
#[derive(Debug, Clone)]
pub struct TopOpts {
    /// Daemon address.
    pub addr: String,
    /// Poll interval in milliseconds.
    pub interval_ms: u64,
    /// Print one snapshot without ANSI redraw, then exit.
    pub once: bool,
    /// Stop after this many polls (`None` = until interrupted).
    pub count: Option<u64>,
}

impl Default for TopOpts {
    fn default() -> Self {
        TopOpts {
            addr: std::env::var("EMU_SIMD_ADDR").unwrap_or_else(|_| "127.0.0.1:7677".into()),
            interval_ms: 1000,
            once: false,
            count: None,
        }
    }
}

/// One histogram as the metrics op reports it.
#[derive(Debug, Clone, Copy, Default)]
struct HistView {
    count: u64,
    sum: u64,
    p50: u64,
    p90: u64,
    p99: u64,
}

/// One parsed registry snapshot.
#[derive(Debug, Clone, Default)]
struct Sample {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, HistView>,
}

impl Sample {
    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

fn obj_pairs(v: &Value) -> Option<&[(String, Value)]> {
    match v {
        Value::Obj(pairs) => Some(pairs),
        _ => None,
    }
}

/// Parse the `"metrics"` object of a metrics-op reply.
fn parse_sample(reply: &str) -> Result<Sample, String> {
    let v = parse(reply)?;
    if v.get("ok").and_then(Value::as_bool) != Some(true) {
        return Err(format!("daemon refused metrics op: {reply}"));
    }
    let m = v.get("metrics").ok_or("reply has no \"metrics\" object")?;
    let mut sample = Sample::default();
    if let Some(pairs) = m.get("counters").and_then(obj_pairs) {
        for (name, val) in pairs {
            sample
                .counters
                .insert(name.clone(), val.as_u64().unwrap_or(0));
        }
    }
    if let Some(pairs) = m.get("gauges").and_then(obj_pairs) {
        for (name, val) in pairs {
            sample
                .gauges
                .insert(name.clone(), val.as_f64().unwrap_or(0.0) as i64);
        }
    }
    if let Some(pairs) = m.get("histograms").and_then(obj_pairs) {
        for (name, h) in pairs {
            let f = |k: &str| h.get(k).and_then(Value::as_u64).unwrap_or(0);
            sample.hists.insert(
                name.clone(),
                HistView {
                    count: f("count"),
                    sum: f("sum"),
                    p50: f("p50"),
                    p90: f("p90"),
                    p99: f("p99"),
                },
            );
        }
    }
    Ok(sample)
}

fn fetch(opts: &ClientOpts) -> Result<Sample, String> {
    let reply = request(opts, "{\"op\":\"metrics\",\"id\":1}")?;
    parse_sample(&reply)
}

/// Human duration from nanoseconds.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn rate(delta: u64, dt: Duration) -> f64 {
    let secs = dt.as_secs_f64();
    if secs <= 0.0 {
        0.0
    } else {
        delta as f64 / secs
    }
}

/// Extract the `worker="N"` index from a labeled series name.
fn worker_index(name: &str) -> Option<&str> {
    name.split("worker=\"").nth(1)?.split('"').next()
}

/// Render one dashboard frame. `prev` (and the wall-clock gap since
/// it) powers the rate and busy-ratio lines; the first frame shows
/// totals only.
fn render(opts: &TopOpts, prev: Option<(&Sample, Duration)>, cur: &Sample) -> String {
    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };

    line(format!(
        "simd top — {} — every {}ms",
        opts.addr, opts.interval_ms
    ));
    let d = |name: &str| -> u64 {
        let now = cur.counter(name);
        match prev {
            Some((p, _)) => now.saturating_sub(p.counter(name)),
            None => 0,
        }
    };
    let dt = prev.map(|(_, gap)| gap).unwrap_or_default();

    let submitted = cur.counter("simd_pool_submitted_total");
    let accepted = cur.counter("simd_pool_accepted_total");
    let rejected = cur.counter("simd_pool_rejected_busy_total")
        + cur.counter("simd_pool_rejected_draining_total");
    line(format!(
        "pool     submitted {submitted}  accepted {accepted}  rejected {rejected}  in-flight {}  req/s {:.1}",
        cur.gauge("simd_pool_in_flight"),
        rate(d("simd_pool_submitted_total"), dt),
    ));
    let ok = cur.counter("simd_pool_completed_ok_total");
    let failed = [
        "simd_pool_failed_proto_total",
        "simd_pool_failed_sim_total",
        "simd_pool_failed_audit_total",
        "simd_pool_failed_event_cap_total",
        "simd_pool_failed_deadline_total",
        "simd_pool_failed_panic_total",
    ]
    .iter()
    .map(|n| cur.counter(n))
    .sum::<u64>();
    line(format!(
        "runs     ok {ok}  failed {failed}  deadline {}  event-cap {}  panic {}  respawns {}",
        cur.counter("simd_pool_failed_deadline_total"),
        cur.counter("simd_pool_failed_event_cap_total"),
        cur.counter("simd_pool_failed_panic_total"),
        cur.counter("simd_pool_respawns_total"),
    ));
    let warm = cur.counter("simd_pool_warm_hits_total");
    let cold = cur.counter("simd_pool_cold_builds_total");
    let warm_pct = if warm + cold > 0 {
        100.0 * warm as f64 / (warm + cold) as f64
    } else {
        0.0
    };
    line(format!(
        "engines  warm {warm}  cold {cold}  warm-rate {warm_pct:.0}%  sticky-routed {}  selfchecks {}",
        cur.counter("simd_pool_routed_sticky_total"),
        cur.counter("simd_pool_selfcheck_runs_total"),
    ));
    // Result-cache line: daemon-side admission hits plus the process
    // cache counters. All zeros (and a quiet line) unless EMU_CACHE is
    // on in the daemon.
    let cache_hits = cur.counter("emu_cache_hits_total");
    let cache_misses = cur.counter("emu_cache_misses_total");
    if cache_hits + cache_misses + cur.counter("emu_cache_stores_total") > 0 {
        line(format!(
            "cache    served {}  hits {cache_hits}  misses {cache_misses}  stores {}  bytes {}",
            cur.counter("simd_pool_served_from_cache_total"),
            cur.counter("emu_cache_stores_total"),
            cur.counter("emu_cache_bytes_written_total"),
        ));
    }
    for (title, name) in [
        ("queue-wait", "simd_pool_queue_wait_ns"),
        ("execute", "simd_pool_execute_ns"),
    ] {
        let h = cur.hists.get(name).copied().unwrap_or_default();
        let mean = h.sum.checked_div(h.count).unwrap_or(0);
        line(format!(
            "{title:<8} n {}  mean {}  p50 {}  p90 {}  p99 {}",
            h.count,
            fmt_ns(mean),
            fmt_ns(h.p50),
            fmt_ns(h.p90),
            fmt_ns(h.p99),
        ));
    }

    // Per-worker busy ratios from busy-ns growth over the poll gap.
    let mut workers: Vec<String> = Vec::new();
    for name in cur.counters.keys() {
        if !name.starts_with("simd_worker_busy_ns_total{") {
            continue;
        }
        let Some(idx) = worker_index(name) else {
            continue;
        };
        let jobs = cur.counter(&format!("simd_worker_jobs_total{{worker=\"{idx}\"}}"));
        let busy = match prev {
            Some((p, gap)) if gap.as_nanos() > 0 => {
                let grew = cur.counter(name).saturating_sub(p.counter(name));
                100.0 * grew as f64 / gap.as_nanos() as f64
            }
            _ => 0.0,
        };
        workers.push(format!("w{idx} {busy:.0}% ({jobs} jobs)"));
    }
    if !workers.is_empty() {
        line(format!("workers  {}", workers.join("  ")));
    }

    line(format!(
        "server   conns {} (active {})  bytes in {} out {}  parse-errors {}  scrapes {}",
        cur.counter("simd_server_connections_total"),
        cur.gauge("simd_server_connections_active"),
        cur.counter("simd_server_bytes_in_total"),
        cur.counter("simd_server_bytes_out_total"),
        cur.counter("simd_server_parse_errors_total"),
        cur.counter("simd_server_metrics_scrapes_total"),
    ));
    line(format!(
        "sim      runs {}  events {}  epochs {}  events/s {:.0}  mailbox hwm {}",
        cur.counter("emu_engine_runs_total"),
        cur.counter("emu_engine_events_total"),
        cur.counter("emu_pdes_epochs_total"),
        rate(d("emu_engine_events_total"), dt),
        cur.gauge("emu_pdes_mailbox_depth_hwm"),
    ));
    out
}

/// Run the dashboard loop. Blocks until `--once`/`--count` is
/// satisfied or a poll fails.
pub fn run(opts: &TopOpts) -> Result<(), String> {
    let client = ClientOpts {
        addr: opts.addr.clone(),
        ..ClientOpts::default()
    };
    let mut prev: Option<(Sample, Instant)> = None;
    let max_polls = if opts.once {
        1
    } else {
        opts.count.unwrap_or(u64::MAX)
    };
    let mut stdout = std::io::stdout();
    let mut polls = 0u64;
    while polls < max_polls {
        let cur = fetch(&client)?;
        let now = Instant::now();
        let frame = render(
            opts,
            prev.as_ref().map(|(s, at)| (s, now.duration_since(*at))),
            &cur,
        );
        if !opts.once {
            // Clear + home: redraw in place like top(1).
            let _ = write!(stdout, "\x1b[2J\x1b[H");
        }
        write!(stdout, "{frame}").map_err(|e| e.to_string())?;
        stdout.flush().map_err(|e| e.to_string())?;
        prev = Some((cur, now));
        polls += 1;
        if polls < max_polls {
            std::thread::sleep(Duration::from_millis(opts.interval_ms.max(50)));
        }
    }
    Ok(())
}

/// The `top` subcommand front-end.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let mut opts = TopOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val =
            || -> Result<&String, String> { it.next().ok_or_else(|| format!("{a} needs a value")) };
        match a.as_str() {
            "--addr" => opts.addr = val()?.clone(),
            "--interval" => opts.interval_ms = val()?.parse().map_err(|_| "bad --interval")?,
            "--once" => opts.once = true,
            "--count" => opts.count = Some(val()?.parse().map_err(|_| "bad --count")?),
            other => return Err(format!("unknown top flag {other:?}")),
        }
    }
    run(&opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPLY: &str = "{\"id\":1,\"ok\":true,\"metrics\":{\
        \"counters\":{\"simd_pool_submitted_total\":10,\
        \"simd_pool_accepted_total\":9,\
        \"simd_pool_completed_ok_total\":8,\
        \"simd_pool_warm_hits_total\":6,\
        \"simd_pool_cold_builds_total\":2,\
        \"simd_worker_busy_ns_total{worker=\\\"0\\\"}\":500,\
        \"simd_worker_jobs_total{worker=\\\"0\\\"}\":8},\
        \"gauges\":{\"simd_pool_in_flight\":1},\
        \"histograms\":{\"simd_pool_execute_ns\":{\
        \"count\":8,\"sum\":800,\"p50\":90,\"p90\":120,\"p99\":127,\
        \"buckets\":[[6,8]]}}}}";

    #[test]
    fn sample_parses_counters_gauges_and_histograms() {
        let s = parse_sample(REPLY).unwrap();
        assert_eq!(s.counter("simd_pool_submitted_total"), 10);
        assert_eq!(s.gauge("simd_pool_in_flight"), 1);
        let h = s.hists["simd_pool_execute_ns"];
        assert_eq!((h.count, h.p50, h.p99), (8, 90, 127));
        assert_eq!(s.counter("simd_worker_jobs_total{worker=\"0\"}"), 8);
    }

    #[test]
    fn render_produces_the_expected_sections() {
        let s = parse_sample(REPLY).unwrap();
        let opts = TopOpts {
            once: true,
            ..TopOpts::default()
        };
        let frame = render(&opts, None, &s);
        assert!(
            frame.contains("pool     submitted 10  accepted 9"),
            "{frame}"
        );
        assert!(frame.contains("warm 6  cold 2  warm-rate 75%"), "{frame}");
        assert!(frame.contains("w0 0% (8 jobs)"), "{frame}");
        assert!(
            frame.contains("execute  n 8  mean 100ns  p50 90ns"),
            "{frame}"
        );
        assert!(!frame.contains('\x1b'), "frames carry no ANSI codes");
    }

    #[test]
    fn render_rates_use_the_previous_sample() {
        let a = parse_sample(REPLY).unwrap();
        let mut b = a.clone();
        b.counters.insert("simd_pool_submitted_total".into(), 30);
        b.counters.insert(
            "simd_worker_busy_ns_total{worker=\"0\"}".into(),
            500 + 500_000_000,
        );
        let opts = TopOpts::default();
        let frame = render(&opts, Some((&a, Duration::from_secs(2))), &b);
        assert!(frame.contains("req/s 10.0"), "{frame}");
        assert!(frame.contains("w0 25%"), "{frame}");
    }

    #[test]
    fn cache_line_appears_only_when_the_cache_saw_traffic() {
        let quiet = parse_sample(REPLY).unwrap();
        let opts = TopOpts {
            once: true,
            ..TopOpts::default()
        };
        assert!(!render(&opts, None, &quiet).contains("cache    "));

        let mut busy = quiet.clone();
        busy.counters.insert("emu_cache_hits_total".into(), 5);
        busy.counters.insert("emu_cache_misses_total".into(), 2);
        busy.counters.insert("emu_cache_stores_total".into(), 2);
        busy.counters
            .insert("simd_pool_served_from_cache_total".into(), 5);
        let frame = render(&opts, None, &busy);
        assert!(
            frame.contains("cache    served 5  hits 5  misses 2  stores 2"),
            "{frame}"
        );
    }

    #[test]
    fn error_replies_are_surfaced() {
        assert!(parse_sample("{\"id\":1,\"ok\":false}").is_err());
        assert!(parse_sample("not json").is_err());
    }
}
