//! The daemon's client: one-shot requests with seeded, jittered
//! exponential backoff, plus the `simctl client` sweep front-end.
//!
//! Retry policy: connection failures, I/O errors, and `busy`
//! rejections are retryable (the daemon advertises `retry_after_ms`
//! on busy). `shutting_down` and every typed run failure are final.
//! Backoff is deterministic per seed so soak tests replay exactly.

use crate::parse::parse;
use crate::proto::{run_request_line, RunRequest, Spec};
use desim::rng::{rng_from_seed, trial_seed};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client connection and retry policy.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    /// Daemon address.
    pub addr: String,
    /// Retries after the first attempt.
    pub retries: u32,
    /// Base backoff in milliseconds (doubled per attempt, plus jitter).
    pub backoff_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for ClientOpts {
    fn default() -> Self {
        ClientOpts {
            addr: "127.0.0.1:7677".into(),
            retries: 5,
            backoff_ms: 10,
            seed: desim::rng::DEFAULT_SEED,
        }
    }
}

fn send_once(addr: &str, line: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(line.as_bytes())
        .and_then(|_| writer.write_all(b"\n"))
        .and_then(|_| writer.flush())
        .map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| format!("recv: {e}"))?;
    if n == 0 {
        return Err("connection closed before response".into());
    }
    Ok(reply.trim_end().to_string())
}

/// True if `reply` is a `busy` rejection; also yields the server's
/// retry hint when present.
fn busy_hint(reply: &str) -> Option<u64> {
    let v = parse(reply).ok()?;
    let err = v.get("error")?;
    if err.get("kind")?.as_str()? != "busy" {
        return None;
    }
    Some(
        v.get("retry_after_ms")
            .and_then(|h| h.as_u64())
            .unwrap_or(0),
    )
}

/// Send one request line, retrying transient failures with seeded
/// jittered exponential backoff. Returns the final response line.
pub fn request(opts: &ClientOpts, line: &str) -> Result<String, String> {
    let mut last_err = String::new();
    for attempt in 0..=opts.retries {
        match send_once(&opts.addr, line) {
            Ok(reply) => match busy_hint(&reply) {
                None => return Ok(reply),
                Some(hint) if attempt < opts.retries => {
                    backoff(opts, attempt, hint);
                    last_err = format!("busy after {} attempts", attempt + 1);
                }
                Some(_) => return Ok(reply), // out of retries: surface the rejection
            },
            Err(e) => {
                last_err = e;
                if attempt < opts.retries {
                    backoff(opts, attempt, 0);
                }
            }
        }
    }
    Err(format!("{}: giving up: {last_err}", opts.addr))
}

fn backoff(opts: &ClientOpts, attempt: u32, server_hint_ms: u64) {
    let base = opts.backoff_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.min(10));
    let jitter = rng_from_seed(trial_seed(opts.seed, attempt as u64)).gen_range(0..base);
    std::thread::sleep(Duration::from_millis(exp.max(server_hint_ms) + jitter));
}

/// The `client` subcommand: submit a run sweep (or health/shutdown)
/// and stream response lines to stdout.
pub fn run_cli(args: &[String]) -> Result<(), String> {
    let mut opts = ClientOpts {
        addr: std::env::var("EMU_SIMD_ADDR").unwrap_or_else(|_| "127.0.0.1:7677".into()),
        ..ClientOpts::default()
    };
    if let Ok(v) = std::env::var("EMU_SIMD_RETRIES") {
        opts.retries = v.parse().map_err(|_| "bad EMU_SIMD_RETRIES")?;
    }
    if let Ok(v) = std::env::var("EMU_SIMD_BACKOFF_MS") {
        opts.backoff_ms = v.parse().map_err(|_| "bad EMU_SIMD_BACKOFF_MS")?;
    }
    let mut preset = "chick".to_string();
    let mut kernel = "add".to_string();
    let mut strategy = "recursive-remote".to_string();
    let mut elems: u64 = 4096;
    let mut threads: Vec<usize> = vec![64];
    let mut requests: usize = 1;
    let mut single_nodelet = false;
    let mut stack_touch_period: u32 = 4;
    let mut deadline_ms = None;
    let mut max_events = None;
    let mut chaos = None;
    let mut health = false;
    let mut shutdown = false;
    let mut out: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val =
            || -> Result<&String, String> { it.next().ok_or_else(|| format!("{a} needs a value")) };
        match a.as_str() {
            "--addr" => opts.addr = val()?.clone(),
            "--retries" => opts.retries = val()?.parse().map_err(|_| "bad --retries")?,
            "--backoff-ms" => opts.backoff_ms = val()?.parse().map_err(|_| "bad --backoff-ms")?,
            "--seed" => opts.seed = val()?.parse().map_err(|_| "bad --seed")?,
            "--preset" => preset = val()?.clone(),
            "--kernel" => kernel = val()?.clone(),
            "--strategy" => strategy = val()?.clone(),
            "--elems" => elems = val()?.parse().map_err(|_| "bad --elems")?,
            "--threads" => {
                threads = val()?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|_| format!("bad --threads {t:?}")))
                    .collect::<Result<_, _>>()?;
            }
            "--requests" => requests = val()?.parse().map_err(|_| "bad --requests")?,
            "--single-nodelet" => single_nodelet = true,
            "--stack-touch-period" => {
                stack_touch_period = val()?.parse().map_err(|_| "bad --stack-touch-period")?;
            }
            "--deadline-ms" => deadline_ms = Some(val()?.parse().map_err(|_| "bad --deadline-ms")?),
            "--max-events" => max_events = Some(val()?.parse().map_err(|_| "bad --max-events")?),
            "--chaos" => {
                chaos = match val()?.as_str() {
                    "panic" => Some(crate::proto::Chaos::Panic),
                    other => return Err(format!("unknown chaos directive {other:?}")),
                };
            }
            "--health" => health = true,
            "--shutdown" => shutdown = true,
            "--out" => out = Some(val()?.clone()),
            other => return Err(format!("unknown client flag {other:?}")),
        }
    }

    let mut lines = Vec::new();
    let mut id: u64 = 1;
    if health {
        lines.push(request(
            &opts,
            &format!("{{\"op\":\"health\",\"id\":{id}}}"),
        )?);
        id += 1;
    }
    if !health && !shutdown {
        for &t in &threads {
            for _ in 0..requests {
                let req = RunRequest {
                    id,
                    spec: Spec::Stream {
                        preset: preset.clone(),
                        elems,
                        threads: t,
                        kernel: kernel.clone(),
                        strategy: strategy.clone(),
                        single_nodelet,
                        stack_touch_period,
                    },
                    deadline_ms,
                    max_events,
                    chaos,
                };
                id += 1;
                lines.push(request(&opts, &run_request_line(&req))?);
            }
        }
    }
    if shutdown {
        lines.push(request(
            &opts,
            &format!("{{\"op\":\"shutdown\",\"id\":{id}}}"),
        )?);
    }

    let mut stdout = std::io::stdout();
    for l in &lines {
        writeln!(stdout, "{l}").map_err(|e| e.to_string())?;
    }
    stdout.flush().map_err(|e| e.to_string())?;
    if let Some(path) = out {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let body = lines.join("\n") + "\n";
        std::fs::write(&path, body).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}
