//! The `simd` binary: the resident simulation daemon and its client.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(simd::dispatch(&args));
}
