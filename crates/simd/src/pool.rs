//! The warm worker pool: persistent per-thread engines, admission
//! control, a cooperative deadline timer, and a supervisor that
//! respawns faulted workers.
//!
//! Requests are routed *sticky-first*: a request whose config matches
//! an engine some worker already has warm goes to that worker (a reset
//! is ~free; a cold build is not), and everything else falls back to
//! round-robin over the per-worker mpsc queues. The pool (not the
//! worker) owns each queue's receiver, so a worker that dies mid-panic
//! never strands queued jobs: the supervisor's replacement picks up
//! the same queue. Every accepted request gets exactly one response —
//! success, typed failure, or the panic notice sent on the worker's
//! behalf after `catch_unwind`.
//!
//! Every [`PoolStats`] transition is mirrored into the process-global
//! [`emu_core::obs`] registry (plus queue-wait/execute latency
//! histograms and per-worker busy counters the shutdown summary can't
//! express), so a live daemon is observable via `{"op":"metrics"}`,
//! the Prometheus exporter, and `simctl top`.

use crate::exec::{self, WarmSlot};
use crate::proto::{cached_response, err_response, ok_response, Chaos, ErrorKind, RunRequest};
use emu_core::obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// The pool's registered live metrics: handles resolved once, then
/// every update is one relaxed atomic next to the matching
/// [`PoolStats`] bump (the obs deltas must reconcile exactly against
/// the snapshot counters — `tests/metrics.rs` enforces it).
struct PoolObs {
    submitted: &'static obs::Counter,
    accepted: &'static obs::Counter,
    rejected_busy: &'static obs::Counter,
    rejected_draining: &'static obs::Counter,
    completed_ok: &'static obs::Counter,
    failed_proto: &'static obs::Counter,
    failed_sim: &'static obs::Counter,
    failed_audit: &'static obs::Counter,
    failed_event_cap: &'static obs::Counter,
    failed_deadline: &'static obs::Counter,
    failed_panic: &'static obs::Counter,
    warm_hits: &'static obs::Counter,
    cold_builds: &'static obs::Counter,
    served_from_cache: &'static obs::Counter,
    respawns: &'static obs::Counter,
    selfcheck_runs: &'static obs::Counter,
    selfcheck_failures: &'static obs::Counter,
    routed_sticky: &'static obs::Counter,
    in_flight: &'static obs::Gauge,
    queue_wait: &'static obs::Histogram,
    execute: &'static obs::Histogram,
}

fn pool_obs() -> &'static PoolObs {
    static CELLS: std::sync::OnceLock<PoolObs> = std::sync::OnceLock::new();
    CELLS.get_or_init(|| PoolObs {
        submitted: obs::counter("simd_pool_submitted_total"),
        accepted: obs::counter("simd_pool_accepted_total"),
        rejected_busy: obs::counter("simd_pool_rejected_busy_total"),
        rejected_draining: obs::counter("simd_pool_rejected_draining_total"),
        completed_ok: obs::counter("simd_pool_completed_ok_total"),
        failed_proto: obs::counter("simd_pool_failed_proto_total"),
        failed_sim: obs::counter("simd_pool_failed_sim_total"),
        failed_audit: obs::counter("simd_pool_failed_audit_total"),
        failed_event_cap: obs::counter("simd_pool_failed_event_cap_total"),
        failed_deadline: obs::counter("simd_pool_failed_deadline_total"),
        failed_panic: obs::counter("simd_pool_failed_panic_total"),
        warm_hits: obs::counter("simd_pool_warm_hits_total"),
        cold_builds: obs::counter("simd_pool_cold_builds_total"),
        served_from_cache: obs::counter("simd_pool_served_from_cache_total"),
        respawns: obs::counter("simd_pool_respawns_total"),
        selfcheck_runs: obs::counter("simd_pool_selfcheck_runs_total"),
        selfcheck_failures: obs::counter("simd_pool_selfcheck_failures_total"),
        routed_sticky: obs::counter("simd_pool_routed_sticky_total"),
        in_flight: obs::gauge("simd_pool_in_flight"),
        queue_wait: obs::histogram("simd_pool_queue_wait_ns"),
        execute: obs::histogram("simd_pool_execute_ns"),
    })
}

/// Per-worker live series (busy time and jobs served). A respawned
/// worker resolves to the same handles, so the series survives panics.
struct WorkerObs {
    busy_ns: &'static obs::Counter,
    jobs: &'static obs::Counter,
}

impl WorkerObs {
    fn new(idx: usize) -> WorkerObs {
        WorkerObs {
            busy_ns: obs::counter(format!("simd_worker_busy_ns_total{{worker=\"{idx}\"}}")),
            jobs: obs::counter(format!("simd_worker_jobs_total{{worker=\"{idx}\"}}")),
        }
    }
}

/// Pool sizing and per-request defaults.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (each owns one warm engine slot).
    pub workers: usize,
    /// Admission cap: maximum requests in flight (queued + running).
    pub queue_cap: usize,
    /// Default wall-clock budget per request in ms (0 = unlimited).
    pub default_deadline_ms: u64,
    /// Default event budget per request (0 = the config's own cap).
    pub default_max_events: u64,
    /// Re-run every warm result cold and compare report bytes.
    pub selfcheck: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 2,
            queue_cap: 8,
            default_deadline_ms: 0,
            default_max_events: 0,
            selfcheck: false,
        }
    }
}

/// Monotonic pool counters. All transitions are recorded so the totals
/// reconcile exactly once the pool has quiesced (see [`PoolStats::reconcile`]).
#[derive(Default)]
pub struct PoolStats {
    /// Requests offered to [`Pool::submit`].
    pub submitted: AtomicU64,
    /// Requests admitted into a worker queue.
    pub accepted: AtomicU64,
    /// Rejections because the in-flight cap was reached.
    pub rejected_busy: AtomicU64,
    /// Rejections because the pool was draining.
    pub rejected_draining: AtomicU64,
    /// Runs that finished and passed the audit.
    pub completed_ok: AtomicU64,
    /// Failures: bad case/spec after admission.
    pub failed_proto: AtomicU64,
    /// Failures: the simulation faulted.
    pub failed_sim: AtomicU64,
    /// Failures: report audit or self-check mismatch.
    pub failed_audit: AtomicU64,
    /// Failures: event budget exhausted.
    pub failed_event_cap: AtomicU64,
    /// Failures: wall-clock deadline exceeded.
    pub failed_deadline: AtomicU64,
    /// Failures: the worker panicked.
    pub failed_panic: AtomicU64,
    /// Successful runs served by a reset warm engine.
    pub warm_hits: AtomicU64,
    /// Successful runs that built a fresh engine.
    pub cold_builds: AtomicU64,
    /// Successful runs answered from the content-addressed result
    /// cache at admission, without touching a worker.
    pub served_from_cache: AtomicU64,
    /// Workers respawned by the supervisor.
    pub respawns: AtomicU64,
    /// Warm results re-validated against a cold run.
    pub selfcheck_runs: AtomicU64,
    /// Self-check byte mismatches (must stay 0).
    pub selfcheck_failures: AtomicU64,
    /// Requests routed to the worker already warm on their config
    /// (each one is a reset the round-robin router would have wasted).
    pub routed_sticky: AtomicU64,
    /// Requests admitted but not yet answered.
    pub in_flight: AtomicU64,
}

/// A plain-integer copy of [`PoolStats`] taken at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub submitted: u64,
    pub accepted: u64,
    pub rejected_busy: u64,
    pub rejected_draining: u64,
    pub completed_ok: u64,
    pub failed_proto: u64,
    pub failed_sim: u64,
    pub failed_audit: u64,
    pub failed_event_cap: u64,
    pub failed_deadline: u64,
    pub failed_panic: u64,
    pub warm_hits: u64,
    pub cold_builds: u64,
    pub served_from_cache: u64,
    pub respawns: u64,
    pub selfcheck_runs: u64,
    pub selfcheck_failures: u64,
    pub routed_sticky: u64,
    pub in_flight: u64,
}

impl StatsSnapshot {
    /// Sum of all terminal outcomes for admitted requests.
    pub fn finished(&self) -> u64 {
        self.completed_ok
            + self.failed_proto
            + self.failed_sim
            + self.failed_audit
            + self.failed_event_cap
            + self.failed_deadline
            + self.failed_panic
    }

    /// Serialize as a JSON object (stable key order).
    pub fn json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"accepted\":{},\"rejected_busy\":{},\"rejected_draining\":{},\
             \"completed_ok\":{},\"failed_proto\":{},\"failed_sim\":{},\"failed_audit\":{},\
             \"failed_event_cap\":{},\"failed_deadline\":{},\"failed_panic\":{},\
             \"warm_hits\":{},\"cold_builds\":{},\"served_from_cache\":{},\"respawns\":{},\
             \"selfcheck_runs\":{},\"selfcheck_failures\":{},\"routed_sticky\":{},\
             \"in_flight\":{}}}",
            self.submitted,
            self.accepted,
            self.rejected_busy,
            self.rejected_draining,
            self.completed_ok,
            self.failed_proto,
            self.failed_sim,
            self.failed_audit,
            self.failed_event_cap,
            self.failed_deadline,
            self.failed_panic,
            self.warm_hits,
            self.cold_builds,
            self.served_from_cache,
            self.respawns,
            self.selfcheck_runs,
            self.selfcheck_failures,
            self.routed_sticky,
            self.in_flight
        )
    }
}

impl PoolStats {
    /// Copy every counter. Individual loads are atomic but the snapshot
    /// as a whole is not; reconcile only a quiesced pool.
    pub fn snapshot(&self) -> StatsSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::SeqCst);
        StatsSnapshot {
            submitted: g(&self.submitted),
            accepted: g(&self.accepted),
            rejected_busy: g(&self.rejected_busy),
            rejected_draining: g(&self.rejected_draining),
            completed_ok: g(&self.completed_ok),
            failed_proto: g(&self.failed_proto),
            failed_sim: g(&self.failed_sim),
            failed_audit: g(&self.failed_audit),
            failed_event_cap: g(&self.failed_event_cap),
            failed_deadline: g(&self.failed_deadline),
            failed_panic: g(&self.failed_panic),
            warm_hits: g(&self.warm_hits),
            cold_builds: g(&self.cold_builds),
            served_from_cache: g(&self.served_from_cache),
            respawns: g(&self.respawns),
            selfcheck_runs: g(&self.selfcheck_runs),
            selfcheck_failures: g(&self.selfcheck_failures),
            routed_sticky: g(&self.routed_sticky),
            in_flight: g(&self.in_flight),
        }
    }

    /// Conservation checks for a quiesced pool (no requests in flight,
    /// no submissions racing). Returns one message per violated law.
    pub fn reconcile(&self) -> Vec<String> {
        let s = self.snapshot();
        let mut out = Vec::new();
        if s.submitted != s.accepted + s.rejected_busy + s.rejected_draining {
            out.push(format!(
                "admission leak: submitted {} != accepted {} + rejected_busy {} + rejected_draining {}",
                s.submitted, s.accepted, s.rejected_busy, s.rejected_draining
            ));
        }
        if s.accepted != s.finished() + s.in_flight {
            out.push(format!(
                "response leak: accepted {} != finished {} + in_flight {}",
                s.accepted,
                s.finished(),
                s.in_flight
            ));
        }
        if s.completed_ok != s.warm_hits + s.cold_builds + s.served_from_cache {
            out.push(format!(
                "engine accounting leak: completed_ok {} != warm_hits {} + cold_builds {} \
                 + served_from_cache {}",
                s.completed_ok, s.warm_hits, s.cold_builds, s.served_from_cache
            ));
        }
        if s.selfcheck_failures > 0 {
            out.push(format!(
                "warm reuse corruption: {} self-check mismatches",
                s.selfcheck_failures
            ));
        }
        if s.routed_sticky > s.accepted {
            out.push(format!(
                "routing overcount: routed_sticky {} exceeds accepted {}",
                s.routed_sticky, s.accepted
            ));
        }
        out
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The in-flight cap was reached; retry after backoff.
    Busy {
        /// Requests in flight at rejection time.
        in_flight: u64,
    },
    /// The pool is draining and accepts no new work.
    Draining,
}

/// One admitted unit of work.
struct RunJob {
    req: RunRequest,
    resp: mpsc::Sender<String>,
    /// Admission time, for the queue-wait latency histogram.
    queued_at: Instant,
}

enum Job {
    Run(Box<RunJob>),
    Stop,
}

enum SupMsg {
    Down(usize),
    Stop,
}

/// The shared state every worker and the supervisor can see.
struct Shared {
    stats: Arc<PoolStats>,
    timer: TimerCore,
    queues: Vec<Arc<Mutex<mpsc::Receiver<Job>>>>,
    cfg: PoolConfig,
    sup_tx: mpsc::Sender<SupMsg>,
    /// The config key each worker's engine is currently warm on
    /// (`None` after a failure or before the first run). Written by
    /// the owning worker, read by the submit-side sticky router.
    warm_keys: Vec<Mutex<Option<String>>>,
}

/// The resident worker pool.
pub struct Pool {
    senders: Vec<mpsc::Sender<Job>>,
    next: AtomicUsize,
    stats: Arc<PoolStats>,
    draining: Arc<AtomicBool>,
    shared: Arc<Shared>,
    supervisor: Mutex<Option<thread::JoinHandle<()>>>,
    _timer: DeadlineTimer,
}

impl Pool {
    /// Start `cfg.workers` warm workers, the deadline timer, and the
    /// supervisor.
    pub fn start(cfg: PoolConfig) -> Pool {
        let workers = cfg.workers.max(1);
        let stats = Arc::new(PoolStats::default());
        let timer = DeadlineTimer::start();
        let (sup_tx, sup_rx) = mpsc::channel();

        let mut senders = Vec::with_capacity(workers);
        let mut queues = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            queues.push(Arc::new(Mutex::new(rx)));
        }
        let shared = Arc::new(Shared {
            stats: Arc::clone(&stats),
            timer: timer.core(),
            queues,
            cfg,
            sup_tx,
            warm_keys: (0..workers).map(|_| Mutex::new(None)).collect(),
        });
        for idx in 0..workers {
            spawn_worker(idx, Arc::clone(&shared));
        }
        let supervisor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("simd-supervisor".into())
                .spawn(move || {
                    while let Ok(msg) = sup_rx.recv() {
                        match msg {
                            SupMsg::Down(idx) => {
                                shared.stats.respawns.fetch_add(1, Ordering::SeqCst);
                                pool_obs().respawns.inc();
                                spawn_worker(idx, Arc::clone(&shared));
                            }
                            SupMsg::Stop => break,
                        }
                    }
                })
                .expect("spawn supervisor")
        };
        Pool {
            senders,
            next: AtomicUsize::new(0),
            stats,
            draining: Arc::new(AtomicBool::new(false)),
            shared,
            supervisor: Mutex::new(Some(supervisor)),
            _timer: timer,
        }
    }

    /// The pool's counters.
    pub fn stats(&self) -> &Arc<PoolStats> {
        &self.stats
    }

    /// Number of worker queues.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Whether the pool has begun draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Offer a run for admission. On success exactly one response line
    /// will eventually arrive on `resp`.
    pub fn submit(&self, req: RunRequest, resp: mpsc::Sender<String>) -> Result<(), Reject> {
        let m = pool_obs();
        self.stats.submitted.fetch_add(1, Ordering::SeqCst);
        m.submitted.inc();
        if self.draining.load(Ordering::SeqCst) {
            self.stats.rejected_draining.fetch_add(1, Ordering::SeqCst);
            m.rejected_draining.inc();
            return Err(Reject::Draining);
        }
        // Result-cache short circuit: a request whose digest is already
        // stored is answered here, before it ever counts against the
        // in-flight cap or reaches a worker. `cache_plan` is `None`
        // unless the cache is enabled and no telemetry is armed, so the
        // probe is inert by default; chaos requests always dispatch so
        // fault injection is never masked by a stale hit.
        if req.chaos.is_none() {
            if let Some(plan) = exec::cache_plan(&req.spec) {
                if let Some(entry) = runcache::lookup(&plan.digest) {
                    self.stats.accepted.fetch_add(1, Ordering::SeqCst);
                    m.accepted.inc();
                    self.stats.completed_ok.fetch_add(1, Ordering::SeqCst);
                    m.completed_ok.inc();
                    self.stats.served_from_cache.fetch_add(1, Ordering::SeqCst);
                    m.served_from_cache.inc();
                    let _ = resp.send(cached_response(req.id, &entry.payload));
                    return Ok(());
                }
            }
        }
        let cap = self.shared.cfg.queue_cap.max(1) as u64;
        loop {
            let cur = self.stats.in_flight.load(Ordering::SeqCst);
            if cur >= cap {
                self.stats.rejected_busy.fetch_add(1, Ordering::SeqCst);
                m.rejected_busy.inc();
                return Err(Reject::Busy { in_flight: cur });
            }
            if self
                .stats
                .in_flight
                .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break;
            }
        }
        self.stats.accepted.fetch_add(1, Ordering::SeqCst);
        m.accepted.inc();
        m.in_flight.add(1);
        let w = self.pick_worker(&req);
        self.senders[w]
            .send(Job::Run(Box::new(RunJob {
                req,
                resp,
                queued_at: Instant::now(),
            })))
            .expect("pool holds every queue receiver");
        Ok(())
    }

    /// Sticky-first routing: prefer the worker whose parked engine is
    /// already warm on this request's config (a reset instead of a
    /// cold build), else fall back to round-robin. The scan is over
    /// `workers` tiny mutexes held for a comparison each — contention
    /// is bounded by the admission cap.
    fn pick_worker(&self, req: &RunRequest) -> usize {
        if let Some(key) = exec::spec_key(&req.spec) {
            for (i, slot) in self.shared.warm_keys.iter().enumerate() {
                let warm = slot.lock().expect("warm key lock never poisoned");
                if warm.as_deref() == Some(key.as_str()) {
                    self.stats.routed_sticky.fetch_add(1, Ordering::SeqCst);
                    pool_obs().routed_sticky.inc();
                    return i;
                }
            }
        }
        self.next.fetch_add(1, Ordering::SeqCst) % self.senders.len()
    }

    /// Stop admitting, wait up to `timeout` for in-flight work, then
    /// stop the workers and supervisor. Returns `true` if the pool
    /// fully quiesced within the budget.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.draining.store(true, Ordering::SeqCst);
        let start = Instant::now();
        while self.stats.in_flight.load(Ordering::SeqCst) > 0 && start.elapsed() < timeout {
            thread::sleep(Duration::from_millis(5));
        }
        let quiesced = self.stats.in_flight.load(Ordering::SeqCst) == 0;
        for tx in &self.senders {
            let _ = tx.send(Job::Stop);
        }
        let _ = self.shared.sup_tx.send(SupMsg::Stop);
        if let Some(h) = self.supervisor.lock().unwrap().take() {
            let _ = h.join();
        }
        quiesced
    }
}

fn spawn_worker(idx: usize, shared: Arc<Shared>) {
    thread::Builder::new()
        .name(format!("simd-worker-{idx}"))
        .spawn(move || worker_main(idx, shared))
        .expect("spawn worker");
}

fn worker_main(idx: usize, shared: Arc<Shared>) {
    let rx = Arc::clone(&shared.queues[idx]);
    let mut slot = WarmSlot::new();
    let wobs = WorkerObs::new(idx);
    loop {
        // Hold the queue lock only for the blocking recv, never while
        // running a job, so a panicking job cannot poison the queue.
        let job = {
            let guard = rx.lock().expect("queue lock never poisoned");
            guard.recv()
        };
        let job = match job {
            Ok(j) => j,
            Err(_) => break,
        };
        let run = match job {
            Job::Run(r) => r,
            Job::Stop => break,
        };
        let id = run.req.id;
        let resp = run.resp.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_run(idx, &mut slot, *run, &shared, &wobs)
        }));
        if outcome.is_err() {
            // Fault isolation: record the failure, answer on the dead
            // job's behalf, and hand the queue to a fresh worker. The
            // warm engine (possibly corrupted mid-panic) dies with this
            // thread, so the router must forget it.
            shared.stats.failed_panic.fetch_add(1, Ordering::SeqCst);
            shared.stats.in_flight.fetch_sub(1, Ordering::SeqCst);
            let m = pool_obs();
            m.failed_panic.inc();
            m.in_flight.add(-1);
            *shared.warm_keys[idx]
                .lock()
                .expect("warm key lock never poisoned") = None;
            let _ = resp.send(err_response(
                id,
                ErrorKind::Panic,
                "worker panicked; engine discarded, worker respawned",
                None,
            ));
            let _ = shared.sup_tx.send(SupMsg::Down(idx));
            return;
        }
    }
}

fn handle_run(idx: usize, slot: &mut WarmSlot, run: RunJob, shared: &Shared, wobs: &WorkerObs) {
    let RunJob {
        mut req,
        resp,
        queued_at,
    } = run;
    let id = req.id;
    let stats = &shared.stats;
    let m = pool_obs();
    // Latency histograms need clock reads, so they honor the global
    // obs switch; plain counter mirrors are one relaxed atomic and
    // stay on so the registry always reconciles against `PoolStats`.
    let record_latency = obs::enabled();
    if record_latency {
        m.queue_wait.record(queued_at.elapsed().as_nanos() as u64);
    }

    if req.chaos == Some(Chaos::Panic) {
        panic!("chaos: poison request {id}");
    }

    if req.max_events.is_none() && shared.cfg.default_max_events > 0 {
        req.max_events = Some(shared.cfg.default_max_events);
    }
    let deadline_ms = req.deadline_ms.unwrap_or(shared.cfg.default_deadline_ms);
    let cancel = (deadline_ms > 0).then(|| {
        (
            shared.timer.arm(Duration::from_millis(deadline_ms)),
            deadline_ms,
        )
    });

    let exec_start = record_latency.then(Instant::now);
    let result = exec::execute(slot, &req, cancel);
    if let Some(t0) = exec_start {
        let busy = t0.elapsed().as_nanos() as u64;
        m.execute.record(busy);
        wobs.busy_ns.add(busy);
        wobs.jobs.inc();
    }
    // The key the router may sticky-match next: set on success, cleared
    // on any failure (a failed run discards the worker's engine).
    let mut parked_key: Option<String> = None;
    let line = match result {
        Ok(out) => {
            let mut ok = true;
            if out.warm && shared.cfg.selfcheck {
                stats.selfcheck_runs.fetch_add(1, Ordering::SeqCst);
                m.selfcheck_runs.inc();
                let cold = exec::execute(&mut WarmSlot::new(), &req, None);
                if cold.map(|c| c.report_json) != Ok(out.report_json.clone()) {
                    stats.selfcheck_failures.fetch_add(1, Ordering::SeqCst);
                    m.selfcheck_failures.inc();
                    ok = false;
                }
            }
            if ok {
                stats.completed_ok.fetch_add(1, Ordering::SeqCst);
                m.completed_ok.inc();
                if out.warm {
                    stats.warm_hits.fetch_add(1, Ordering::SeqCst);
                    m.warm_hits.inc();
                } else {
                    stats.cold_builds.fetch_add(1, Ordering::SeqCst);
                    m.cold_builds.inc();
                }
                parked_key = Some(out.config_key.clone());
                // Publish for future `submit` probes. No-op unless the
                // cache is on and the run is cacheable (`cache_plan`).
                if req.chaos.is_none() {
                    if let Some(plan) = exec::cache_plan(&req.spec) {
                        runcache::publish(
                            &plan.digest,
                            &runcache::Entry {
                                kind: "simd-run".into(),
                                label: plan.label,
                                payload: out.report_json.clone(),
                                recipe: Some(plan.recipe),
                            },
                        );
                    }
                }
                ok_response(id, idx, out.warm, &out.report_json)
            } else {
                stats.failed_audit.fetch_add(1, Ordering::SeqCst);
                m.failed_audit.inc();
                err_response(
                    id,
                    ErrorKind::Audit,
                    "warm self-check diverged from cold run",
                    None,
                )
            }
        }
        Err(e) => {
            let (counter, mirror) = match e.kind {
                ErrorKind::Proto => (&stats.failed_proto, m.failed_proto),
                ErrorKind::Deadline => (&stats.failed_deadline, m.failed_deadline),
                ErrorKind::EventCap => (&stats.failed_event_cap, m.failed_event_cap),
                ErrorKind::Audit => (&stats.failed_audit, m.failed_audit),
                _ => (&stats.failed_sim, m.failed_sim),
            };
            counter.fetch_add(1, Ordering::SeqCst);
            mirror.inc();
            err_response(id, e.kind, &e.message, None)
        }
    };
    // Publish the warm key before answering, so a client that submits
    // its next request after reading this response is routed sticky.
    *shared.warm_keys[idx]
        .lock()
        .expect("warm key lock never poisoned") = parked_key;
    stats.in_flight.fetch_sub(1, Ordering::SeqCst);
    m.in_flight.add(-1);
    let _ = resp.send(line);
}

/// One armed deadline: when it trips, and the flag the engine polls.
type TimerEntry = (Instant, Arc<AtomicBool>);

/// The armable half of the deadline timer, shared with workers.
#[derive(Clone)]
struct TimerCore {
    entries: Arc<Mutex<Vec<TimerEntry>>>,
}

impl TimerCore {
    /// Arm a fresh flag that trips `after` from now. Dropping every
    /// clone of the returned flag disarms it.
    fn arm(&self, after: Duration) -> Arc<AtomicBool> {
        let flag = Arc::new(AtomicBool::new(false));
        self.entries
            .lock()
            .unwrap()
            .push((Instant::now() + after, Arc::clone(&flag)));
        flag
    }
}

/// A polling wheel for cooperative wall-clock deadlines. Engines check
/// the armed flag every ~1k events; the wheel trips expired flags every
/// couple of milliseconds.
struct DeadlineTimer {
    core: TimerCore,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl DeadlineTimer {
    fn start() -> DeadlineTimer {
        let core = TimerCore {
            entries: Arc::new(Mutex::new(Vec::new())),
        };
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let core = core.clone();
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("simd-deadline-timer".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        {
                            let now = Instant::now();
                            let mut entries = core.entries.lock().unwrap();
                            entries.retain(|(when, flag)| {
                                if Arc::strong_count(flag) == 1 {
                                    return false; // run finished; disarm
                                }
                                if *when <= now {
                                    flag.store(true, Ordering::SeqCst);
                                    return false; // tripped; one-shot
                                }
                                true
                            });
                        }
                        thread::sleep(Duration::from_millis(2));
                    }
                })
                .expect("spawn deadline timer")
        };
        DeadlineTimer {
            core,
            stop,
            handle: Some(handle),
        }
    }

    fn core(&self) -> TimerCore {
        self.core.clone()
    }
}

impl Drop for DeadlineTimer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Spec;

    fn stream_req(id: u64, elems: u64) -> RunRequest {
        RunRequest {
            id,
            spec: Spec::Stream {
                preset: "chick".into(),
                elems,
                threads: 16,
                kernel: "add".into(),
                strategy: "serial".into(),
                single_nodelet: true,
                stack_touch_period: 4,
            },
            deadline_ms: None,
            max_events: None,
            chaos: None,
        }
    }

    fn submit_and_wait(pool: &Pool, req: RunRequest) -> String {
        let (tx, rx) = mpsc::channel();
        pool.submit(req, tx).expect("admitted");
        rx.recv().expect("one response per accepted request")
    }

    #[test]
    fn round_robin_pool_serves_and_reconciles() {
        let pool = Pool::start(PoolConfig {
            workers: 2,
            queue_cap: 8,
            selfcheck: true,
            ..PoolConfig::default()
        });
        let mut responses = Vec::new();
        for i in 0..6 {
            responses.push(submit_and_wait(&pool, stream_req(i, 512)));
        }
        for (i, r) in responses.iter().enumerate() {
            assert!(r.contains("\"ok\":true"), "request {i}: {r}");
        }
        // With 2 workers and identical specs, later requests hit warm
        // engines; every response carries the same report bytes.
        let first = crate::proto::report_slice(&responses[0]).unwrap();
        for r in &responses[1..] {
            assert_eq!(crate::proto::report_slice(r).unwrap(), first);
        }
        assert!(pool.drain(Duration::from_secs(10)));
        let s = pool.stats().snapshot();
        assert_eq!(s.completed_ok, 6);
        assert!(s.warm_hits >= 4, "expected warm reuse, got {s:?}");
        assert_eq!(s.selfcheck_failures, 0);
        assert!(
            pool.stats().reconcile().is_empty(),
            "{:?}",
            pool.stats().reconcile()
        );
    }

    #[test]
    fn sticky_routing_reuses_the_warm_worker() {
        let pool = Pool::start(PoolConfig {
            workers: 2,
            queue_cap: 8,
            ..PoolConfig::default()
        });
        // Warm both workers on different configs: the first request has
        // no warm match (round-robin -> worker 0), the second uses a
        // different preset (no match -> worker 1).
        let a = submit_and_wait(&pool, stream_req(1, 512));
        assert!(a.contains("\"ok\":true"), "{a}");
        let mut other = stream_req(2, 512);
        other.spec = Spec::Stream {
            preset: "chick-sim".into(),
            elems: 512,
            threads: 16,
            kernel: "add".into(),
            strategy: "serial".into(),
            single_nodelet: true,
            stack_touch_period: 4,
        };
        let b = submit_and_wait(&pool, other);
        assert!(b.contains("\"ok\":true"), "{b}");
        // Every further "chick" request must ride worker 0's warm
        // engine: sticky routing beats round-robin, which would have
        // bounced half of them onto worker 1 for cold builds.
        for i in 0..4 {
            let r = submit_and_wait(&pool, stream_req(10 + i, 512));
            assert!(r.contains("\"warm\":true"), "request {i} not warm: {r}");
        }
        assert!(pool.drain(Duration::from_secs(10)));
        let s = pool.stats().snapshot();
        assert_eq!(s.completed_ok, 6);
        assert_eq!(
            s.cold_builds, 2,
            "one cold build per distinct config: {s:?}"
        );
        assert_eq!(s.warm_hits, 4);
        assert_eq!(s.routed_sticky, 4, "{s:?}");
        assert!(pool.stats().reconcile().is_empty());
    }

    #[test]
    fn panic_respawns_worker_without_losing_the_queue() {
        let pool = Pool::start(PoolConfig {
            workers: 1,
            queue_cap: 8,
            ..PoolConfig::default()
        });
        let mut poison = stream_req(1, 256);
        poison.chaos = Some(Chaos::Panic);
        let r = submit_and_wait(&pool, poison);
        assert!(r.contains("\"kind\":\"panic\""), "{r}");
        // The sole worker died; the respawned one must serve this.
        let r2 = submit_and_wait(&pool, stream_req(2, 256));
        assert!(r2.contains("\"ok\":true"), "{r2}");
        assert!(pool.drain(Duration::from_secs(10)));
        let s = pool.stats().snapshot();
        assert_eq!(s.failed_panic, 1);
        assert!(s.respawns >= 1);
        assert!(pool.stats().reconcile().is_empty());
    }

    #[test]
    fn admission_cap_rejects_with_busy() {
        let pool = Pool::start(PoolConfig {
            workers: 1,
            queue_cap: 1,
            ..PoolConfig::default()
        });
        // Fill the single slot with a real request, then overflow.
        let (tx, rx) = mpsc::channel();
        pool.submit(stream_req(1, 2048), tx).unwrap();
        let mut saw_busy = false;
        for i in 0..50 {
            let (tx2, _rx2) = mpsc::channel();
            match pool.submit(stream_req(100 + i, 256), tx2) {
                Err(Reject::Busy { .. }) => {
                    saw_busy = true;
                    break;
                }
                Ok(_) => {} // first one may have finished already
                Err(Reject::Draining) => panic!("not draining"),
            }
        }
        assert!(saw_busy, "cap of 1 never produced a busy rejection");
        let _ = rx.recv();
        pool.drain(Duration::from_secs(10));
        assert!(pool.stats().reconcile().is_empty());
    }

    #[test]
    fn draining_pool_rejects_new_work() {
        let pool = Pool::start(PoolConfig::default());
        pool.drain(Duration::from_secs(1));
        let (tx, _rx) = mpsc::channel();
        assert_eq!(pool.submit(stream_req(1, 256), tx), Err(Reject::Draining));
        let s = pool.stats().snapshot();
        assert_eq!(s.rejected_draining, 1);
    }

    #[test]
    fn deadline_timer_trips_long_runs() {
        let pool = Pool::start(PoolConfig {
            workers: 1,
            queue_cap: 4,
            ..PoolConfig::default()
        });
        let mut req = stream_req(1, 1 << 18);
        req.spec = Spec::Stream {
            preset: "chick".into(),
            elems: 1 << 18,
            threads: 64,
            kernel: "add".into(),
            strategy: "recursive-remote".into(),
            single_nodelet: false,
            stack_touch_period: 4,
        };
        req.deadline_ms = Some(1);
        let r = submit_and_wait(&pool, req);
        assert!(r.contains("\"kind\":\"deadline\""), "{r}");
        // The worker survived the deadline kill and serves the next run.
        let r2 = submit_and_wait(&pool, stream_req(2, 256));
        assert!(r2.contains("\"ok\":true"), "{r2}");
        assert!(pool.drain(Duration::from_secs(10)));
        let s = pool.stats().snapshot();
        assert_eq!(s.failed_deadline, 1);
        assert!(pool.stats().reconcile().is_empty());
    }
}
