//! The ping-pong migration microbenchmark (Section III-E, Fig 10).
//!
//! N threadlets bounce between two nodelets several thousand times,
//! exposing the raw throughput and latency of the migration engine — the
//! component whose idealization in the Emu toolchain simulator explains
//! the pointer-chase validation gap (hardware ≈9 M migrations/s vs
//! simulator ≈16 M/s; single-migration latency 1–2 µs).

use emu_core::prelude::*;

/// Configuration of one ping-pong run.
#[derive(Clone, Debug)]
pub struct PingPongConfig {
    /// Concurrent bouncing threadlets.
    pub nthreads: usize,
    /// Round trips per threadlet (each is two migrations).
    pub round_trips: u32,
    /// First endpoint.
    pub a: NodeletId,
    /// Second endpoint.
    pub b: NodeletId,
}

impl Default for PingPongConfig {
    fn default() -> Self {
        PingPongConfig {
            nthreads: 64,
            round_trips: 2000,
            a: NodeletId(0),
            b: NodeletId(1),
        }
    }
}

/// Result of one ping-pong run.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Total migrations performed.
    pub migrations: u64,
    /// Aggregate migration throughput, migrations/second.
    pub migrations_per_sec: f64,
    /// Mean single-migration latency (issue to arrival), nanoseconds.
    pub mean_latency_ns: f64,
    /// Approximate 99th-percentile migration latency.
    pub p99_latency: desim::time::Time,
    /// Makespan.
    pub makespan: desim::time::Time,
}

struct Bouncer {
    a: NodeletId,
    b: NodeletId,
    remaining: u32,
}

impl Kernel for Bouncer {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        if self.remaining == 0 {
            return Op::Quit;
        }
        self.remaining -= 1;
        let target = if ctx.here == self.a { self.b } else { self.a };
        Op::MigrateTo { nodelet: target }
    }
}

/// Run ping-pong on the Emu machine `cfg`.
pub fn run_pingpong(cfg: &MachineConfig, pc: &PingPongConfig) -> Result<PingPongResult, SimError> {
    assert_ne!(pc.a, pc.b, "endpoints must differ");
    assert!(pc.nthreads > 0 && pc.round_trips > 0);
    let mut engine = Engine::new(cfg.clone())?;
    for t in 0..pc.nthreads {
        // Alternate starting ends so both engines load evenly from t=0.
        let start = if t % 2 == 0 { pc.a } else { pc.b };
        engine.spawn_at(
            start,
            Box::new(Bouncer {
                a: pc.a,
                b: pc.b,
                remaining: pc.round_trips * 2,
            }),
        )?;
    }
    let report = engine.run()?;
    Ok(PingPongResult {
        migrations: report.total_migrations(),
        migrations_per_sec: report.migration_rate(),
        mean_latency_ns: report.migration_latency.summary().mean(),
        p99_latency: report.migration_latency.quantile(0.99),
        makespan: report.makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::presets;

    #[test]
    fn migration_count_exact() {
        let cfg = presets::chick_prototype();
        let pc = PingPongConfig {
            nthreads: 4,
            round_trips: 10,
            ..Default::default()
        };
        let r = run_pingpong(&cfg, &pc).unwrap();
        assert_eq!(r.migrations, 4 * 10 * 2);
    }

    #[test]
    fn saturated_rate_matches_engine_configuration() {
        // With many threads, throughput approaches 2x the per-nodelet
        // engine rate (both directions saturate).
        let cfg = presets::chick_prototype();
        let r = run_pingpong(
            &cfg,
            &PingPongConfig {
                nthreads: 64,
                round_trips: 200,
                ..Default::default()
            },
        )
        .unwrap();
        let expect = 2.0 * cfg.migration_rate_per_sec as f64;
        let ratio = r.migrations_per_sec / expect;
        assert!(
            (0.7..=1.01).contains(&ratio),
            "rate {:.2e} vs engine 2x{:.2e}",
            r.migrations_per_sec,
            cfg.migration_rate_per_sec as f64
        );
    }

    #[test]
    fn toolchain_sim_is_faster_than_hardware() {
        let run = |cfg: &MachineConfig| {
            run_pingpong(
                cfg,
                &PingPongConfig {
                    nthreads: 64,
                    round_trips: 100,
                    ..Default::default()
                },
            )
            .unwrap()
            .migrations_per_sec
        };
        let hw = run(&presets::chick_prototype());
        let sim = run(&presets::chick_toolchain_sim());
        assert!(
            sim > 1.5 * hw,
            "toolchain sim {sim:.2e} should far exceed hw {hw:.2e}"
        );
    }

    #[test]
    fn single_thread_latency_in_paper_range() {
        // Unloaded single-migration latency should be well under the
        // 1-2 us the paper reports under load.
        let cfg = presets::chick_prototype();
        let r = run_pingpong(
            &cfg,
            &PingPongConfig {
                nthreads: 1,
                round_trips: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            r.mean_latency_ns > 100.0 && r.mean_latency_ns < 2000.0,
            "latency {} ns",
            r.mean_latency_ns
        );
    }

    #[test]
    fn loaded_latency_exceeds_unloaded() {
        let cfg = presets::chick_prototype();
        let lat = |threads| {
            run_pingpong(
                &cfg,
                &PingPongConfig {
                    nthreads: threads,
                    round_trips: 100,
                    ..Default::default()
                },
            )
            .unwrap()
            .mean_latency_ns
        };
        assert!(lat(64) > 2.0 * lat(1));
    }
}
