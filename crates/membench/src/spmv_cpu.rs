//! CSR SpMV on the Haswell Xeon with the paper's three parallelization
//! strategies (Fig 9b):
//!
//! * **mkl** — a statically partitioned, nonzero-balanced row-parallel
//!   kernel with no per-task overhead (what a tuned library achieves);
//! * **cilk_for** — dynamic row chunks with a small per-chunk scheduling
//!   cost (the Cilk runtime's divide-and-conquer loop);
//! * **cilk_spawn** — explicit tasks of `grain` nonzeros each, with a
//!   per-task spawn/steal cost; the paper found 16384-element grains best
//!   on the CPU (tiny grains drown in spawn overhead).
//!
//! All strategies run the same memory-access pattern: stream `vals` /
//! `col_idx`, gather `x[col]`, store `y[r]` — so the differences are
//! purely scheduling overhead and partition shape, as in the paper.

use desim::stats::Bandwidth;
use spmat::{CsrMatrix, RowPartition};
use std::sync::{Arc, Mutex};
use xeon_sim::prelude::*;

use crate::spmv_emu::x_value;

/// CPU SpMV parallelization strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CpuStrategy {
    /// Tuned-library behaviour: static nnz-balanced partition, zero task
    /// overhead.
    MklLike,
    /// `cilk_for`: dynamic chunks, light per-chunk cost.
    CilkFor,
    /// `cilk_spawn` with an explicit grain (nonzeros per task).
    CilkSpawn {
        /// Nonzeros per spawned task.
        grain: usize,
    },
}

impl CpuStrategy {
    /// Display name used in figures.
    pub fn name(self) -> String {
        match self {
            CpuStrategy::MklLike => "mkl".into(),
            CpuStrategy::CilkFor => "cilk_for".into(),
            CpuStrategy::CilkSpawn { grain } => format!("cilk_spawn(grain={grain})"),
        }
    }
}

/// Cycles each worker pays to enter the parallel region (thread wake +
/// first-touch + join barrier share) — why small matrices see poor
/// effective bandwidth on the CPU in Fig 9b.
pub const REGION_ENTRY_CYCLES: u32 = 2_000;
/// Per-task overhead cycles (spawn + steal + frame) for `cilk_spawn`.
pub const SPAWN_TASK_CYCLES: u32 = 600;
/// Per-chunk overhead cycles for `cilk_for`'s runtime.
pub const CILK_FOR_CHUNK_CYCLES: u32 = 120;
/// Cycles of real arithmetic per nonzero (FMA + index math; mostly
/// hidden behind loads by the out-of-order core, so small).
pub const CPU_FMA_CYCLES: u32 = 2;

/// Configuration of one CPU SpMV run.
#[derive(Clone, Debug)]
pub struct CpuSpmvConfig {
    /// Parallelization strategy.
    pub strategy: CpuStrategy,
    /// Worker threads (the paper sets 56 = physical cores).
    pub nthreads: usize,
}

impl Default for CpuSpmvConfig {
    fn default() -> Self {
        CpuSpmvConfig {
            strategy: CpuStrategy::MklLike,
            nthreads: 56,
        }
    }
}

/// Result of one CPU SpMV run.
#[derive(Debug)]
pub struct CpuSpmvResult {
    /// Effective bandwidth: [`CsrMatrix::spmv_bytes`] / makespan.
    pub bandwidth: Bandwidth,
    /// The computed output vector.
    pub y: Vec<f64>,
    /// Full platform report.
    pub report: CpuReport,
}

const ROW_PTR_BASE: u64 = 0x10_0000_0000;
const VALS_BASE: u64 = 0x20_0000_0000;
const COLS_BASE: u64 = 0x30_0000_0000;
const X_BASE: u64 = 0x40_0000_0000;
const Y_BASE: u64 = 0x50_0000_0000;

/// A contiguous run of rows plus the overhead to charge before starting it.
#[derive(Clone, Debug)]
struct TaskRange {
    rows: std::ops::Range<u32>,
    overhead_cycles: u32,
}

struct CpuSpmvWorker {
    m: Arc<CsrMatrix>,
    tasks: Vec<TaskRange>,
    y_out: Arc<Mutex<Vec<f64>>>,
    t: usize, // task index
    r: u32,   // row within task
    j: u64,   // nnz within row
    phase: u8,
    acc: f64,
    cur_val: f64,
    xv: f64,
}

impl CpuKernel for CpuSpmvWorker {
    fn step(&mut self, _ctx: &CpuCtx) -> CpuOp {
        loop {
            let Some(task) = self.tasks.get(self.t) else {
                return CpuOp::Quit;
            };
            if self.phase == 0 {
                // Charge the task's scheduling overhead once.
                self.phase = 1;
                self.r = task.rows.start;
                if task.overhead_cycles > 0 {
                    return CpuOp::Compute {
                        cycles: task.overhead_cycles,
                    };
                }
            }
            if self.r >= task.rows.end {
                self.t += 1;
                self.phase = 0;
                continue;
            }
            let r = self.r;
            let range = self.m.row_range(r);
            let row_len = (range.end - range.start) as u64;
            match self.phase {
                1 => {
                    self.phase = 2;
                    self.acc = 0.0;
                    self.j = 0;
                    return CpuOp::Load {
                        addr: ROW_PTR_BASE + r as u64 * 8,
                        bytes: 8,
                    };
                }
                2 => {
                    if self.j >= row_len {
                        self.phase = 6;
                        continue;
                    }
                    self.phase = 3;
                    let k = range.start as u64 + self.j;
                    self.cur_val = self.m.vals()[k as usize];
                    return CpuOp::Load {
                        addr: VALS_BASE + k * 8,
                        bytes: 8,
                    };
                }
                3 => {
                    self.phase = 4;
                    let k = range.start as u64 + self.j;
                    return CpuOp::Load {
                        addr: COLS_BASE + k * 8,
                        bytes: 8,
                    };
                }
                4 => {
                    self.phase = 5;
                    let k = range.start as u64 + self.j;
                    let col = self.m.col_idx()[k as usize];
                    self.xv = x_value(col);
                    return CpuOp::Load {
                        addr: X_BASE + col as u64 * 8,
                        bytes: 8,
                    };
                }
                5 => {
                    self.phase = 2;
                    self.acc += self.cur_val * self.xv;
                    self.j += 1;
                    return CpuOp::Compute {
                        cycles: CPU_FMA_CYCLES,
                    };
                }
                6 => {
                    self.phase = 1;
                    self.y_out.lock().unwrap()[r as usize] = self.acc;
                    self.r += 1;
                    return CpuOp::Store {
                        addr: Y_BASE + r as u64 * 8,
                        bytes: 8,
                    };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Contiguous ranges owned by each worker under a [`RowPartition`]
/// produced by [`spmat::nnz_balanced`] (which yields contiguous blocks).
fn ranges_of(p: &RowPartition, owner: u32) -> Vec<std::ops::Range<u32>> {
    let mut out: Vec<std::ops::Range<u32>> = Vec::new();
    for (r, &o) in p.owner.iter().enumerate() {
        if o != owner {
            continue;
        }
        let r = r as u32;
        match out.last_mut() {
            Some(last) if last.end == r => last.end = r + 1,
            _ => out.push(r..r + 1),
        }
    }
    out
}

/// Run SpMV on the CPU platform `cfg`.
pub fn run_spmv_cpu(cfg: &CpuConfig, m: Arc<CsrMatrix>, sc: &CpuSpmvConfig) -> CpuSpmvResult {
    assert!(sc.nthreads > 0);
    let n = m.nrows();
    let y_out = Arc::new(Mutex::new(vec![0.0; n as usize]));
    // Build each worker's task list according to the strategy.
    let per_worker: Vec<Vec<TaskRange>> = match sc.strategy {
        CpuStrategy::MklLike => {
            let p = spmat::nnz_balanced(&m, sc.nthreads as u32);
            (0..sc.nthreads as u32)
                .map(|w| {
                    ranges_of(&p, w)
                        .into_iter()
                        .map(|rows| TaskRange {
                            rows,
                            overhead_cycles: 0,
                        })
                        .collect()
                })
                .collect()
        }
        CpuStrategy::CilkFor => {
            // Dynamic chunks of nrows / (8 * workers), dealt round-robin
            // (a deterministic stand-in for work stealing).
            let chunk = (n / (8 * sc.nthreads as u32)).max(1);
            let mut per: Vec<Vec<TaskRange>> = vec![Vec::new(); sc.nthreads];
            let mut w = 0usize;
            let mut r = 0u32;
            while r < n {
                let end = (r + chunk).min(n);
                per[w].push(TaskRange {
                    rows: r..end,
                    overhead_cycles: CILK_FOR_CHUNK_CYCLES,
                });
                w = (w + 1) % sc.nthreads;
                r = end;
            }
            per
        }
        CpuStrategy::CilkSpawn { grain } => {
            // Tasks of ~grain nonzeros, dealt round-robin.
            let mut per: Vec<Vec<TaskRange>> = vec![Vec::new(); sc.nthreads];
            let mut w = 0usize;
            let mut start = 0u32;
            let mut acc = 0u64;
            for r in 0..n {
                acc += m.row_nnz(r);
                if acc as usize >= grain || r == n - 1 {
                    per[w].push(TaskRange {
                        rows: start..r + 1,
                        overhead_cycles: SPAWN_TASK_CYCLES,
                    });
                    w = (w + 1) % sc.nthreads;
                    start = r + 1;
                    acc = 0;
                }
            }
            per
        }
    };
    let mut engine = CpuEngine::new(cfg.clone());
    for tasks in per_worker {
        if tasks.is_empty() {
            continue;
        }
        let mut tasks = tasks;
        tasks[0].overhead_cycles += REGION_ENTRY_CYCLES;
        engine.add_thread(Box::new(CpuSpmvWorker {
            m: Arc::clone(&m),
            tasks,
            y_out: Arc::clone(&y_out),
            t: 0,
            r: 0,
            j: 0,
            phase: 0,
            acc: 0.0,
            cur_val: 0.0,
            xv: 0.0,
        }));
    }
    let report = engine.run();
    let y = y_out.lock().unwrap().clone();
    CpuSpmvResult {
        bandwidth: report.bandwidth_for(m.spmv_bytes()),
        y,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmv_emu::x_vector;
    use spmat::{laplacian, LaplacianSpec};
    use xeon_sim::config::haswell;

    fn check(strategy: CpuStrategy, n: u32) -> CpuSpmvResult {
        let m = Arc::new(laplacian(LaplacianSpec::paper(n)));
        let reference = m.spmv(&x_vector(m.ncols()));
        let r = run_spmv_cpu(
            &haswell(),
            Arc::clone(&m),
            &CpuSpmvConfig {
                strategy,
                nthreads: 8,
            },
        );
        let err = reference
            .iter()
            .zip(&r.y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "{}: wrong result", strategy.name());
        r
    }

    #[test]
    fn all_strategies_correct() {
        check(CpuStrategy::MklLike, 14);
        check(CpuStrategy::CilkFor, 14);
        check(CpuStrategy::CilkSpawn { grain: 64 }, 14);
    }

    #[test]
    fn tiny_grain_hurts_cilk_spawn() {
        // Both grains must still yield enough tasks for every worker
        // (16384-nnz grains need the big matrices of the real figure runs;
        // here 2048 plays the "large grain" at test scale).
        let m = Arc::new(laplacian(LaplacianSpec::paper(100)));
        let bw = |grain| {
            run_spmv_cpu(
                &haswell(),
                Arc::clone(&m),
                &CpuSpmvConfig {
                    strategy: CpuStrategy::CilkSpawn { grain },
                    nthreads: 16,
                },
            )
            .bandwidth
            .mb_per_sec()
        };
        let small = bw(16);
        let large = bw(2048);
        assert!(
            large > 1.5 * small,
            "grain 2048 ({large}) should beat grain 16 ({small})"
        );
    }

    #[test]
    fn mkl_like_is_at_least_as_fast_as_spawn() {
        let m = Arc::new(laplacian(LaplacianSpec::paper(40)));
        let run = |s| {
            run_spmv_cpu(
                &haswell(),
                Arc::clone(&m),
                &CpuSpmvConfig {
                    strategy: s,
                    nthreads: 16,
                },
            )
            .bandwidth
            .mb_per_sec()
        };
        let mkl = run(CpuStrategy::MklLike);
        let spawn = run(CpuStrategy::CilkSpawn { grain: 16 });
        assert!(mkl > spawn, "mkl {mkl} vs spawn {spawn}");
    }

    #[test]
    fn ranges_of_merges_contiguous_rows() {
        let p = spmat::contiguous(10, 2);
        assert_eq!(ranges_of(&p, 0), vec![0..5]);
        assert_eq!(ranges_of(&p, 1), vec![5..10]);
        let rr = spmat::round_robin(6, 2);
        assert_eq!(ranges_of(&rr, 0), vec![0..1, 2..3, 4..5]);
    }
}
