//! STREAM (McCalpin) ported to both platforms, as in Section III-E.
//!
//! The paper's headline kernel is ADD (`c[i] = a[i] + b[i]` over 8-byte
//! elements, 24 B of traffic per element); COPY/SCALE/TRIAD are provided
//! as extensions. On the Emu the three arrays are striped across
//! nodelets and worker `w` of `W` touches indices `w, w+W, …` — when `W`
//! is a multiple of the nodelet count every index a worker touches lives
//! on one nodelet, so a *remotely spawned* worker never migrates in
//! steady state. Workers created by the non-remote strategies keep their
//! stacks (Cilk frames) on the spawning nodelet and periodically touch
//! them, migrating back and forth — the Fig 5 effect.

use desim::stats::Bandwidth;
use emu_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which STREAM kernel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i] + b[i]` — the paper's kernel (24 B/element).
    Add,
    /// `c[i] = a[i]` (16 B/element).
    Copy,
    /// `c[i] = s * a[i]` (16 B/element).
    Scale,
    /// `c[i] = a[i] + s * b[i]` (24 B/element).
    Triad,
}

impl StreamKernel {
    /// Loads per element.
    pub fn loads(self) -> u32 {
        match self {
            StreamKernel::Add | StreamKernel::Triad => 2,
            StreamKernel::Copy | StreamKernel::Scale => 1,
        }
    }

    /// Semantic bytes of traffic per element (8 B words).
    pub fn bytes_per_elem(self) -> u64 {
        (self.loads() as u64 + 1) * 8
    }

    /// Arithmetic cycles charged per element (loop control + adds; the
    /// Gossamer soft core spends several cycles per compiled iteration).
    pub fn compute_cycles(self) -> u32 {
        match self {
            StreamKernel::Copy => 9,
            StreamKernel::Scale => 10,
            StreamKernel::Add => 9,
            StreamKernel::Triad => 11,
        }
    }

    /// Benchmark name as printed in figures.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Add => "ADD",
            StreamKernel::Copy => "COPY",
            StreamKernel::Scale => "SCALE",
            StreamKernel::Triad => "TRIAD",
        }
    }
}

/// Configuration of one Emu STREAM run.
#[derive(Clone, Debug)]
pub struct EmuStreamConfig {
    /// Total elements across the whole machine.
    pub total_elems: u64,
    /// Worker threadlets.
    pub nthreads: usize,
    /// Spawn-tree strategy (Figs 4–5 sweep this).
    pub strategy: SpawnStrategy,
    /// Kernel variant.
    pub kernel: StreamKernel,
    /// Restrict data and workers to a single nodelet (Fig 4) instead of
    /// striping across all nodelets (Fig 5).
    pub single_nodelet: bool,
    /// Every `stack_touch_period` elements a worker touches its Cilk
    /// frame on its spawn-home nodelet (0 disables). Models the frame
    /// bookkeeping that penalizes non-remote spawn strategies.
    pub stack_touch_period: u32,
}

impl Default for EmuStreamConfig {
    fn default() -> Self {
        EmuStreamConfig {
            total_elems: 1 << 20,
            nthreads: 512,
            strategy: SpawnStrategy::RecursiveRemote,
            kernel: StreamKernel::Add,
            single_nodelet: false,
            stack_touch_period: 4,
        }
    }
}

/// Result of one STREAM run.
#[derive(Debug, Clone)]
pub struct StreamResult {
    /// Semantic bytes moved (elements x bytes/element).
    pub semantic_bytes: u64,
    /// Achieved bandwidth (semantic bytes / makespan).
    pub bandwidth: Bandwidth,
    /// Full machine report.
    pub report: RunReport,
    /// Functional checksum (must equal [`stream_checksum`]).
    pub checksum: u64,
}

/// The expected checksum for `n` elements: workers compute
/// `sum over i of (a[i] + b[i])` with `a[i] = i`, `b[i] = 2i`.
pub fn stream_checksum(n: u64, kernel: StreamKernel) -> u64 {
    let sum_i = |n: u64| n.wrapping_mul(n.wrapping_sub(1)) / 2;
    match kernel {
        StreamKernel::Add => 3u64.wrapping_mul(sum_i(n)),
        StreamKernel::Copy => sum_i(n),
        StreamKernel::Scale => 2u64.wrapping_mul(sum_i(n)),
        StreamKernel::Triad => 5u64.wrapping_mul(sum_i(n)),
    }
}

/// The worker threadlet: strided walk over the striped arrays.
struct StreamWorker {
    a: ArrayHandle,
    b: ArrayHandle,
    c: ArrayHandle,
    i: u64,
    step: u64,
    n: u64,
    kernel: StreamKernel,
    stack_touch_period: u32,
    /// Micro-state within the per-element op sequence.
    phase: u8,
    elems_done: u32,
    acc: u64,
    total: Arc<AtomicU64>,
    done: bool,
}

impl Kernel for StreamWorker {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        loop {
            if self.i >= self.n {
                if !self.done {
                    self.done = true;
                    self.total.fetch_add(self.acc, Ordering::Relaxed);
                }
                return Op::Quit;
            }
            let i = self.i;
            match self.phase {
                0 => {
                    // Periodic Cilk-frame touch on the spawn-home nodelet.
                    self.phase = 1;
                    if self.stack_touch_period > 0
                        && self.elems_done.is_multiple_of(self.stack_touch_period)
                    {
                        return Op::Load {
                            addr: GlobalAddr::new(ctx.home, 0x10),
                            bytes: 8,
                        };
                    }
                }
                1 => {
                    self.phase = 2;
                    self.acc = self.acc.wrapping_add(match self.kernel {
                        StreamKernel::Add | StreamKernel::Triad => i.wrapping_mul(3),
                        StreamKernel::Copy => i,
                        StreamKernel::Scale => i,
                    });
                    return Op::Load {
                        addr: self.a.addr(i, ctx.here),
                        bytes: 8,
                    };
                }
                2 => {
                    self.phase = 3;
                    if self.kernel.loads() == 2 {
                        return Op::Load {
                            addr: self.b.addr(i, ctx.here),
                            bytes: 8,
                        };
                    }
                }
                3 => {
                    self.phase = 4;
                    // Triad/Scale multiply by a scalar: fold it into the
                    // functional checksum.
                    if matches!(self.kernel, StreamKernel::Scale) {
                        self.acc = self.acc.wrapping_add(i);
                    }
                    if matches!(self.kernel, StreamKernel::Triad) {
                        self.acc = self.acc.wrapping_add(i.wrapping_mul(2));
                    }
                    return Op::Compute {
                        cycles: self.kernel.compute_cycles(),
                    };
                }
                4 => {
                    self.phase = 0;
                    self.elems_done += 1;
                    self.i += self.step;
                    return Op::Store {
                        addr: self.c.addr(i, ctx.here),
                        bytes: 8,
                    };
                }
                _ => unreachable!("phase"),
            }
        }
    }
}

/// Run STREAM on the Emu machine described by `cfg`.
pub fn run_stream_emu(cfg: &MachineConfig, sc: &EmuStreamConfig) -> Result<StreamResult, SimError> {
    let mut engine = Engine::new(cfg.clone())?;
    run_stream_on(&mut engine, sc)
}

/// Run STREAM on a caller-provided engine (which must be freshly built
/// or [`Engine::reset`]). This is the warm-reuse entry the `simd` daemon
/// uses: the engine's construction cost is paid once per worker while
/// per-request results stay byte-identical to [`run_stream_emu`], which
/// delegates here. Respects any event cap or cancellation flag armed on
/// the engine before the call.
pub fn run_stream_on(engine: &mut Engine, sc: &EmuStreamConfig) -> Result<StreamResult, SimError> {
    assert!(sc.nthreads > 0 && sc.total_elems > 0);
    let cfg = engine.cfg().clone();
    let nodelets = cfg.total_nodelets();
    let mut ms = MemSpace::new(nodelets);
    let (a, b, c) = if sc.single_nodelet {
        (
            ms.local(NodeletId(0), sc.total_elems, 8),
            ms.local(NodeletId(0), sc.total_elems, 8),
            ms.local(NodeletId(0), sc.total_elems, 8),
        )
    } else {
        (
            ms.striped(sc.total_elems, 8),
            ms.striped(sc.total_elems, 8),
            ms.striped(sc.total_elems, 8),
        )
    };
    let total = Arc::new(AtomicU64::new(0));
    let factory: WorkerFactory = {
        let (a, b, c) = (a.clone(), b.clone(), c.clone());
        let total = Arc::clone(&total);
        let sc2 = sc.clone();
        Arc::new(move |w| {
            Box::new(StreamWorker {
                a: a.clone(),
                b: b.clone(),
                c: c.clone(),
                i: w as u64,
                step: sc2.nthreads as u64,
                n: sc2.total_elems,
                kernel: sc2.kernel,
                stack_touch_period: sc2.stack_touch_period,
                phase: 0,
                elems_done: 0,
                acc: 0,
                total: Arc::clone(&total),
                done: false,
            })
        })
    };
    // The spawn fan-out spans all nodelets unless the run is pinned to one.
    let fanout = if sc.single_nodelet { 1 } else { nodelets };
    let root = emu_core::spawn::root_kernel(sc.strategy, sc.nthreads, fanout, factory);
    engine.spawn_at(NodeletId(0), root)?;
    let report = engine.run_once()?;
    let semantic_bytes = sc.total_elems * sc.kernel.bytes_per_elem();
    Ok(StreamResult {
        semantic_bytes,
        bandwidth: report.bandwidth_for(semantic_bytes),
        checksum: total.load(Ordering::Relaxed),
        report,
    })
}

/// CPU-side STREAM (Section III-C: same Cilk code with x86 mallocs).
pub mod cpu {
    use super::StreamKernel;
    use desim::stats::Bandwidth;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use xeon_sim::prelude::*;

    /// Configuration of one CPU STREAM run.
    #[derive(Clone, Debug)]
    pub struct CpuStreamConfig {
        /// Total elements.
        pub total_elems: u64,
        /// Software threads (each takes a contiguous chunk).
        pub nthreads: usize,
        /// Kernel variant.
        pub kernel: StreamKernel,
        /// Use non-temporal stores for `c` (tuned STREAM does).
        pub nt_stores: bool,
    }

    impl Default for CpuStreamConfig {
        fn default() -> Self {
            CpuStreamConfig {
                total_elems: 1 << 22,
                nthreads: 16,
                kernel: StreamKernel::Add,
                nt_stores: true,
            }
        }
    }

    /// Result of a CPU STREAM run.
    #[derive(Debug, Clone)]
    pub struct CpuStreamResult {
        /// Semantic bytes (elements x bytes/element).
        pub semantic_bytes: u64,
        /// Achieved bandwidth.
        pub bandwidth: Bandwidth,
        /// Full platform report.
        pub report: CpuReport,
        /// Functional checksum (equals [`super::stream_checksum`]).
        pub checksum: u64,
    }

    // Array bases far apart so streams don't alias cache sets unfairly.
    const BASE_A: u64 = 0x1_0000_0000;
    const BASE_B: u64 = 0x2_0000_0000;
    const BASE_C: u64 = 0x3_0000_0000;

    struct Worker {
        i: u64,
        end: u64,
        kernel: StreamKernel,
        nt: bool,
        phase: u8,
        acc: u64,
        total: Arc<AtomicU64>,
        done: bool,
    }

    impl CpuKernel for Worker {
        fn step(&mut self, _ctx: &CpuCtx) -> CpuOp {
            loop {
                if self.i >= self.end {
                    if !self.done {
                        self.done = true;
                        self.total.fetch_add(self.acc, Ordering::Relaxed);
                    }
                    return CpuOp::Quit;
                }
                let i = self.i;
                match self.phase {
                    0 => {
                        self.phase = 1;
                        self.acc = self.acc.wrapping_add(match self.kernel {
                            StreamKernel::Add => i.wrapping_mul(3),
                            StreamKernel::Copy => i,
                            StreamKernel::Scale => i.wrapping_mul(2),
                            StreamKernel::Triad => i.wrapping_mul(5),
                        });
                        return CpuOp::Load {
                            addr: BASE_A + i * 8,
                            bytes: 8,
                        };
                    }
                    1 => {
                        self.phase = 2;
                        if self.kernel.loads() == 2 {
                            return CpuOp::Load {
                                addr: BASE_B + i * 8,
                                bytes: 8,
                            };
                        }
                    }
                    2 => {
                        self.phase = 3;
                        return CpuOp::Compute { cycles: 1 };
                    }
                    3 => {
                        self.phase = 0;
                        self.i += 1;
                        let addr = BASE_C + i * 8;
                        return if self.nt {
                            CpuOp::StoreNt { addr, bytes: 8 }
                        } else {
                            CpuOp::Store { addr, bytes: 8 }
                        };
                    }
                    _ => unreachable!(),
                }
            }
        }
    }

    /// Run STREAM on the CPU platform `cfg`.
    pub fn run_stream_cpu(cfg: &CpuConfig, sc: &CpuStreamConfig) -> CpuStreamResult {
        assert!(sc.nthreads > 0 && sc.total_elems > 0);
        let total = Arc::new(AtomicU64::new(0));
        let mut engine = CpuEngine::new(cfg.clone());
        let chunk = sc.total_elems.div_ceil(sc.nthreads as u64);
        for t in 0..sc.nthreads as u64 {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(sc.total_elems);
            if start >= end {
                continue;
            }
            engine.add_thread(Box::new(Worker {
                i: start,
                end,
                kernel: sc.kernel,
                nt: sc.nt_stores,
                phase: 0,
                acc: 0,
                total: Arc::clone(&total),
                done: false,
            }));
        }
        let report = engine.run();
        let semantic_bytes = sc.total_elems * sc.kernel.bytes_per_elem();
        CpuStreamResult {
            semantic_bytes,
            bandwidth: report.bandwidth_for(semantic_bytes),
            checksum: total.load(Ordering::Relaxed),
            report,
        }
    }

    pub use super::stream_checksum as checksum;
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::presets;

    fn small(strategy: SpawnStrategy, single: bool, threads: usize) -> EmuStreamConfig {
        EmuStreamConfig {
            total_elems: 4096,
            nthreads: threads,
            strategy,
            single_nodelet: single,
            ..Default::default()
        }
    }

    #[test]
    fn checksum_verifies_every_strategy() {
        let cfg = presets::chick_prototype();
        for s in SpawnStrategy::ALL {
            let r = run_stream_emu(&cfg, &small(s, false, 32)).unwrap();
            assert_eq!(
                r.checksum,
                stream_checksum(4096, StreamKernel::Add),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn single_nodelet_runs_only_on_nodelet_zero() {
        let cfg = presets::chick_prototype();
        let r = run_stream_emu(&cfg, &small(SpawnStrategy::Serial, true, 16)).unwrap();
        assert_eq!(r.checksum, stream_checksum(4096, StreamKernel::Add));
        // All memory traffic on nodelet 0.
        for (i, n) in r.report.nodelets.iter().enumerate().skip(1) {
            assert_eq!(n.bytes_total(), 0, "nodelet {i} touched");
        }
        assert_eq!(r.report.total_migrations(), 0);
    }

    #[test]
    fn striped_run_spreads_traffic() {
        let cfg = presets::chick_prototype();
        let r = run_stream_emu(&cfg, &small(SpawnStrategy::RecursiveRemote, false, 64)).unwrap();
        for (i, n) in r.report.nodelets.iter().enumerate() {
            assert!(n.bytes_total() > 0, "nodelet {i} idle");
        }
        // Remote-spawned workers with aligned strides never migrate after
        // arrival (stack touches are local).
        assert!(
            r.report.migrations_per_thread.mean() <= 1.1,
            "mean migrations {}",
            r.report.migrations_per_thread.mean()
        );
    }

    #[test]
    fn serial_spawn_on_striped_arrays_migrates_constantly() {
        let cfg = presets::chick_prototype();
        let r = run_stream_emu(&cfg, &small(SpawnStrategy::Serial, false, 64)).unwrap();
        // Workers live on nodelet 0 stacks: every stack touch drags them
        // back — orders of magnitude more migrations than remote spawn.
        assert!(
            r.report.total_migrations() > 1000,
            "migrations {}",
            r.report.total_migrations()
        );
    }

    #[test]
    fn more_threads_more_bandwidth_single_nodelet() {
        let cfg = presets::chick_prototype();
        let bw = |t: usize| {
            run_stream_emu(
                &cfg,
                &EmuStreamConfig {
                    total_elems: 1 << 14,
                    nthreads: t,
                    strategy: SpawnStrategy::Serial,
                    single_nodelet: true,
                    ..Default::default()
                },
            )
            .unwrap()
            .bandwidth
            .mb_per_sec()
        };
        let b1 = bw(1);
        let b16 = bw(16);
        assert!(b16 > 4.0 * b1, "1thr={b1} 16thr={b16}");
    }

    #[test]
    fn kernels_have_expected_traffic() {
        assert_eq!(StreamKernel::Add.bytes_per_elem(), 24);
        assert_eq!(StreamKernel::Copy.bytes_per_elem(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_elem(), 24);
    }

    mod cpu_tests {
        use super::super::cpu::*;
        use super::super::{stream_checksum, StreamKernel};
        use xeon_sim::config::sandy_bridge;

        #[test]
        fn cpu_checksum_verifies() {
            let r = run_stream_cpu(
                &sandy_bridge(),
                &CpuStreamConfig {
                    total_elems: 8192,
                    nthreads: 4,
                    kernel: StreamKernel::Add,
                    nt_stores: true,
                },
            );
            assert_eq!(r.checksum, stream_checksum(8192, StreamKernel::Add));
        }

        #[test]
        fn cpu_stream_is_fast_thanks_to_prefetch() {
            let mk = |enabled: bool| {
                let mut cfg = sandy_bridge();
                cfg.prefetch.enabled = enabled;
                run_stream_cpu(
                    &cfg,
                    &CpuStreamConfig {
                        total_elems: 1 << 16,
                        nthreads: 8,
                        kernel: StreamKernel::Add,
                        nt_stores: true,
                    },
                )
                .bandwidth
                .gb_per_sec()
            };
            let with = mk(true);
            let without = mk(false);
            assert!(
                with > 2.0 * without,
                "prefetch {with} GB/s vs none {without} GB/s"
            );
        }

        #[test]
        fn nt_stores_beat_rfo() {
            let mk = |nt: bool| {
                run_stream_cpu(
                    &sandy_bridge(),
                    &CpuStreamConfig {
                        total_elems: 1 << 16,
                        nthreads: 8,
                        kernel: StreamKernel::Add,
                        nt_stores: nt,
                    },
                )
                .bandwidth
                .gb_per_sec()
            };
            assert!(mk(true) > mk(false));
        }
    }
}
