//! The pointer-chasing benchmark (Section III-E, Figs 6–8).
//!
//! Each thread walks a linked list of 16-byte elements (8 B payload +
//! 8 B next pointer), summing the payloads. Elements are grouped into
//! *blocks*; a permutation may shuffle the order of elements within each
//! block, the order of the blocks, or both, and the block size sweeps the
//! amount of spatial locality:
//!
//! * data-dependent loads — one outstanding access per thread;
//! * fine-grained 16 B accesses — a quarter of an x86 cache line;
//! * each element read exactly once — caches and prefetchers largely
//!   useless.
//!
//! On the Emu, each block lives on one nodelet and consecutive blocks
//! round-robin across nodelets, so a thread migrates (at most) once per
//! block transition; on the Xeon, blocks are contiguous memory, so a
//! block is a region of cache lines and DRAM rows.

use desim::rng::{permutation, trial_seed};
use desim::stats::Bandwidth;
use emu_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes per list element (8 B payload + 8 B next pointer).
pub const ELEM_BYTES: u64 = 16;

/// Which permutation is applied to the traversal order (Fig 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShuffleMode {
    /// No shuffle: fully sequential traversal.
    Ordered,
    /// Shuffle elements within each block; blocks in order.
    IntraBlock,
    /// Shuffle block order; elements within a block sequential.
    BlockShuffle,
    /// Shuffle both (the paper's headline configuration).
    FullBlock,
}

impl ShuffleMode {
    /// All modes, for sweeps.
    pub const ALL: [ShuffleMode; 4] = [
        ShuffleMode::Ordered,
        ShuffleMode::IntraBlock,
        ShuffleMode::BlockShuffle,
        ShuffleMode::FullBlock,
    ];

    /// The paper's name for the mode.
    pub fn name(self) -> &'static str {
        match self {
            ShuffleMode::Ordered => "ordered",
            ShuffleMode::IntraBlock => "intra_block_shuffle",
            ShuffleMode::BlockShuffle => "block_shuffle",
            ShuffleMode::FullBlock => "full_block_shuffle",
        }
    }
}

/// Traversal order of `n` elements in blocks of `block` under `mode`:
/// a permutation of `0..n` visiting whole blocks one after another.
pub fn traversal_order(n: usize, block: usize, mode: ShuffleMode, seed: u64) -> Vec<u32> {
    assert!(block > 0, "block must be > 0");
    assert!(n.is_multiple_of(block), "n must be a multiple of block");
    let nblocks = n / block;
    let block_order: Vec<u32> = match mode {
        ShuffleMode::BlockShuffle | ShuffleMode::FullBlock => {
            permutation(nblocks, trial_seed(seed, 0))
        }
        _ => (0..nblocks as u32).collect(),
    };
    let mut order = Vec::with_capacity(n);
    for (bi, &b) in block_order.iter().enumerate() {
        let base = b as usize * block;
        match mode {
            ShuffleMode::IntraBlock | ShuffleMode::FullBlock => {
                let inner = permutation(block, trial_seed(seed, 1 + bi as u64));
                order.extend(inner.iter().map(|&i| (base + i as usize) as u32));
            }
            _ => order.extend((base..base + block).map(|i| i as u32)),
        }
    }
    order
}

/// The workload: one list per thread, all the same geometry.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Elements per list (must be a multiple of `block_elems`).
    pub elems_per_list: usize,
    /// Number of lists == number of threads.
    pub nlists: usize,
    /// Elements per block.
    pub block_elems: usize,
    /// Permutation mode.
    pub mode: ShuffleMode,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            elems_per_list: 1 << 14,
            nlists: 64,
            block_elems: 64,
            mode: ShuffleMode::FullBlock,
            seed: desim::rng::DEFAULT_SEED,
        }
    }
}

impl ChaseConfig {
    /// Total elements across all lists.
    pub fn total_elems(&self) -> u64 {
        (self.elems_per_list * self.nlists) as u64
    }

    /// Semantic traffic: every element is read once (16 B).
    pub fn semantic_bytes(&self) -> u64 {
        self.total_elems() * ELEM_BYTES
    }

    /// Expected payload checksum: payloads are the global element ids.
    pub fn expected_checksum(&self) -> u64 {
        let n = self.total_elems();
        n.wrapping_mul(n.wrapping_sub(1)) / 2
    }
}

/// Result of a chase run on either platform.
#[derive(Debug, Clone)]
pub struct ChaseResult {
    /// Semantic bytes (elements x 16 B).
    pub semantic_bytes: u64,
    /// Achieved bandwidth.
    pub bandwidth: Bandwidth,
    /// Payload checksum (must equal [`ChaseConfig::expected_checksum`]).
    pub checksum: u64,
    /// Total thread migrations (Emu runs; 0 on CPU).
    pub migrations: u64,
    /// Makespan of the run.
    pub makespan: desim::time::Time,
    /// Threadlet time breakdown (Emu runs; zeroed on CPU).
    pub breakdown: emu_core::engine::TimeBreakdown,
    /// Fault-recovery totals (Emu runs; zeroed on CPU).
    pub faults: emu_core::metrics::FaultTotals,
    /// Discrete events the engine processed (Emu runs; 0 on CPU).
    pub events: u64,
    /// Full machine report (Emu runs; `None` on CPU, which has no
    /// engine report to audit or fingerprint).
    pub report: Option<emu_core::metrics::RunReport>,
}

/// Per-element compute charged by the Emu chase kernel: pointer compare,
/// payload add, loop branch on the Gossamer soft core. Chosen so the
/// kernel's best-case byte rate lands near the measured-peak-STREAM
/// fraction the paper reports (≈80 %, Fig 8).
pub const EMU_CHASE_COMPUTE_CYCLES: u32 = 15;

struct EmuChaser {
    /// Traversal order: precomputed chain of global element ids.
    order: Arc<Vec<u32>>,
    /// Element id -> address owner mapping.
    elems: ArrayHandle,
    pos: usize,
    phase: u8,
    acc: u64,
    base_id: u64,
    total: Arc<AtomicU64>,
    done: bool,
}

impl Kernel for EmuChaser {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        if self.pos >= self.order.len() {
            if !self.done {
                self.done = true;
                self.total.fetch_add(self.acc, Ordering::Relaxed);
            }
            return Op::Quit;
        }
        if self.phase == 0 {
            self.phase = 1;
            let e = self.order[self.pos] as u64;
            self.acc = self.acc.wrapping_add(self.base_id + e);
            Op::Load {
                addr: self.elems.addr(e, ctx.here),
                bytes: ELEM_BYTES as u32,
            }
        } else {
            self.phase = 0;
            self.pos += 1;
            Op::Compute {
                cycles: EMU_CHASE_COMPUTE_CYCLES,
            }
        }
    }
}

/// Run pointer chasing on the Emu machine `cfg`.
///
/// Each list's blocks are placed round-robin across nodelets (block `b`
/// on nodelet `b % nodelets`); each thread starts (remote-spawned in
/// spirit) on the nodelet of its first element.
pub fn run_chase_emu(cfg: &MachineConfig, cc: &ChaseConfig) -> Result<ChaseResult, SimError> {
    let nodelets = cfg.total_nodelets();
    let mut ms = MemSpace::new(nodelets);
    let total = Arc::new(AtomicU64::new(0));
    let mut engine = Engine::new(cfg.clone())?;
    for l in 0..cc.nlists {
        let n = cc.elems_per_list;
        let nblocks = n / cc.block_elems;
        // Stagger the round-robin start per list so that lists with few
        // blocks still spread over all nodelets (allocations from
        // different threads start on different nodelets).
        let owners: Vec<NodeletId> = (0..nblocks)
            .map(|b| NodeletId(((b + l) % nodelets as usize) as u32))
            .collect();
        let elems = ms.blocked(owners, cc.block_elems as u64, n as u64, ELEM_BYTES as u32);
        let order = Arc::new(traversal_order(
            n,
            cc.block_elems,
            cc.mode,
            trial_seed(cc.seed, l as u64),
        ));
        let first = elems.owner(order[0] as u64, NodeletId(0));
        engine.spawn_at(
            first,
            Box::new(EmuChaser {
                order,
                elems,
                pos: 0,
                phase: 0,
                acc: 0,
                base_id: (l * n) as u64,
                total: Arc::clone(&total),
                done: false,
            }),
        )?;
    }
    let report = engine.run()?;
    Ok(ChaseResult {
        semantic_bytes: cc.semantic_bytes(),
        bandwidth: report.bandwidth_for(cc.semantic_bytes()),
        checksum: total.load(Ordering::Relaxed),
        migrations: report.total_migrations(),
        makespan: report.makespan,
        faults: report.fault_totals(),
        breakdown: report.breakdown,
        events: report.events,
        report: Some(report),
    })
}

/// CPU-side pointer chasing.
pub mod cpu {
    use super::*;
    use xeon_sim::prelude::*;

    /// Per-element compute on the Xeon (pointer compare + add + branch;
    /// out-of-order hides most of it behind the load).
    pub const CPU_CHASE_COMPUTE_CYCLES: u32 = 2;

    struct CpuChaser {
        order: Arc<Vec<u32>>,
        base_addr: u64,
        base_id: u64,
        pos: usize,
        phase: u8,
        acc: u64,
        total: Arc<AtomicU64>,
        done: bool,
    }

    impl CpuKernel for CpuChaser {
        fn step(&mut self, _ctx: &CpuCtx) -> CpuOp {
            if self.pos >= self.order.len() {
                if !self.done {
                    self.done = true;
                    self.total.fetch_add(self.acc, Ordering::Relaxed);
                }
                return CpuOp::Quit;
            }
            if self.phase == 0 {
                self.phase = 1;
                let e = self.order[self.pos] as u64;
                self.acc = self.acc.wrapping_add(self.base_id + e);
                CpuOp::Load {
                    addr: self.base_addr + e * ELEM_BYTES,
                    bytes: ELEM_BYTES as u32,
                }
            } else {
                self.phase = 0;
                self.pos += 1;
                CpuOp::Compute {
                    cycles: CPU_CHASE_COMPUTE_CYCLES,
                }
            }
        }
    }

    /// Run pointer chasing on the CPU platform `cfg`. Lists are
    /// contiguous 16 B-element arrays at well-separated bases.
    pub fn run_chase_cpu(cfg: &CpuConfig, cc: &ChaseConfig) -> ChaseResult {
        let total = Arc::new(AtomicU64::new(0));
        let mut engine = CpuEngine::new(cfg.clone());
        let list_bytes = (cc.elems_per_list as u64 * ELEM_BYTES).next_power_of_two();
        for l in 0..cc.nlists {
            let order = Arc::new(traversal_order(
                cc.elems_per_list,
                cc.block_elems,
                cc.mode,
                trial_seed(cc.seed, l as u64),
            ));
            engine.add_thread(Box::new(CpuChaser {
                order,
                base_addr: 0x10_0000_0000 + l as u64 * list_bytes,
                base_id: (l * cc.elems_per_list) as u64,
                pos: 0,
                phase: 0,
                acc: 0,
                total: Arc::clone(&total),
                done: false,
            }));
        }
        let report = engine.run();
        ChaseResult {
            semantic_bytes: cc.semantic_bytes(),
            bandwidth: report.bandwidth_for(cc.semantic_bytes()),
            checksum: total.load(Ordering::Relaxed),
            migrations: 0,
            makespan: report.makespan,
            breakdown: emu_core::engine::TimeBreakdown::default(),
            faults: emu_core::metrics::FaultTotals::default(),
            events: 0,
            report: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::presets;

    #[test]
    fn traversal_order_is_a_permutation() {
        for mode in ShuffleMode::ALL {
            let mut o = traversal_order(256, 16, mode, 42);
            o.sort_unstable();
            assert_eq!(o, (0..256u32).collect::<Vec<_>>(), "{}", mode.name());
        }
    }

    #[test]
    fn ordered_mode_is_identity() {
        let o = traversal_order(64, 8, ShuffleMode::Ordered, 1);
        assert_eq!(o, (0..64u32).collect::<Vec<_>>());
    }

    #[test]
    fn intra_block_keeps_blocks_in_order() {
        let o = traversal_order(64, 16, ShuffleMode::IntraBlock, 9);
        for (k, &e) in o.iter().enumerate() {
            assert_eq!(k / 16, e as usize / 16, "element outside its block slot");
        }
        assert_ne!(o, (0..64u32).collect::<Vec<_>>(), "should actually shuffle");
    }

    #[test]
    fn block_shuffle_keeps_elements_in_order_within_block() {
        let o = traversal_order(64, 16, ShuffleMode::BlockShuffle, 9);
        for chunk in o.chunks(16) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], w[0] + 1, "in-block order broken");
            }
        }
    }

    #[test]
    fn full_block_visits_whole_blocks() {
        let o = traversal_order(64, 16, ShuffleMode::FullBlock, 5);
        for chunk in o.chunks(16) {
            let b = chunk[0] / 16;
            assert!(chunk.iter().all(|&e| e / 16 == b), "block interleaved");
        }
    }

    #[test]
    fn emu_chase_checksum_and_migrations() {
        let cfg = presets::chick_prototype();
        let cc = ChaseConfig {
            elems_per_list: 512,
            nlists: 8,
            block_elems: 64,
            mode: ShuffleMode::FullBlock,
            seed: 7,
        };
        let r = run_chase_emu(&cfg, &cc).unwrap();
        assert_eq!(r.checksum, cc.expected_checksum());
        // One migration per block transition at most: 8 lists x 8 blocks.
        assert!(r.migrations <= 8 * 8, "migrations {}", r.migrations);
        assert!(r.migrations > 8, "suspiciously few migrations");
    }

    #[test]
    fn emu_block_one_migrates_per_element() {
        let cfg = presets::chick_prototype();
        let cc = ChaseConfig {
            elems_per_list: 256,
            nlists: 4,
            block_elems: 1,
            mode: ShuffleMode::FullBlock,
            seed: 7,
        };
        let r = run_chase_emu(&cfg, &cc).unwrap();
        assert_eq!(r.checksum, cc.expected_checksum());
        // Nearly every element is on a different nodelet than the last.
        let total = cc.total_elems();
        assert!(
            r.migrations as f64 > 0.8 * total as f64,
            "migrations {} of {total}",
            r.migrations
        );
    }

    #[test]
    fn emu_bandwidth_insensitive_to_block_size_above_threshold() {
        let cfg = presets::chick_prototype();
        let bw = |block: usize| {
            let cc = ChaseConfig {
                elems_per_list: 2048,
                nlists: 64,
                block_elems: block,
                mode: ShuffleMode::FullBlock,
                seed: 3,
            };
            run_chase_emu(&cfg, &cc).unwrap().bandwidth.mb_per_sec()
        };
        let b8 = bw(8);
        let b256 = bw(256);
        let ratio = b8 / b256;
        assert!(
            (0.7..1.3).contains(&ratio),
            "Emu should be flat: 8 -> {b8}, 256 -> {b256}"
        );
    }

    mod cpu_tests {
        use super::super::cpu::run_chase_cpu;
        use super::super::*;
        use xeon_sim::config::sandy_bridge;

        #[test]
        fn cpu_chase_checksum() {
            let cc = ChaseConfig {
                elems_per_list: 1024,
                nlists: 4,
                block_elems: 32,
                mode: ShuffleMode::FullBlock,
                seed: 11,
            };
            let r = run_chase_cpu(&sandy_bridge(), &cc);
            assert_eq!(r.checksum, cc.expected_checksum());
            assert_eq!(r.migrations, 0);
        }

        #[test]
        fn cpu_prefers_mid_size_blocks() {
            // The Fig 7 hump: one-DRAM-page blocks beat tiny blocks. The
            // paper's lists dwarf the LLC; to keep the test fast we shrink
            // the LLC instead of growing the list.
            let mut cfg = sandy_bridge();
            cfg.l3.capacity = 1 << 20;
            let bw = |block: usize| {
                let cc = ChaseConfig {
                    elems_per_list: 1 << 15,
                    nlists: 8,
                    block_elems: block,
                    mode: ShuffleMode::FullBlock,
                    seed: 13,
                };
                run_chase_cpu(&cfg, &cc).bandwidth.mb_per_sec()
            };
            let tiny = bw(1);
            let page = bw(512); // 512 x 16 B = 8 KiB = one DRAM page
            assert!(
                page > 2.0 * tiny,
                "page-sized blocks {page} should beat tiny {tiny}"
            );
        }
    }
}
