//! # membench — the Emu Chick paper's benchmark suite
//!
//! Platform-portable implementations of every workload in the paper's
//! evaluation (Section III-E), each verified functionally (checksums or
//! exact output vectors) while the discrete-event machine models account
//! for time:
//!
//! | Module | Paper experiment |
//! |---|---|
//! | [`stream`] | STREAM ADD with the four spawn strategies (Figs 4–5) + CPU STREAM |
//! | [`chase`]  | pointer chasing with block shuffles (Figs 6–8) |
//! | [`spmv_emu`] | CSR SpMV with local/1D/2D Emu layouts (Fig 9a) |
//! | [`spmv_cpu`] | CSR SpMV with mkl / cilk_for / cilk_spawn (Fig 9b) |
//! | [`pingpong`] | migration throughput/latency microbenchmark (Fig 10) |
//! | [`gups`] | GUPS/RandomAccess (extension, discussed in III-E) |

#![warn(missing_docs)]

pub mod chase;
pub mod gups;
pub mod pingpong;
pub mod spmv_cpu;
pub mod spmv_emu;
pub mod stream;
