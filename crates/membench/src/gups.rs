//! GUPS / RandomAccess (extension benchmark).
//!
//! Section III-E notes the pointer chase "is quite similar to the
//! GUPS/RandomAccess benchmark, however GUPS lacks data-dependent loads
//! and pointer chase does not modify the list." This module provides the
//! other corner of that comparison: random read-modify-write updates to a
//! giant table.
//!
//! On the Emu, updates use **memory-side remote atomics** — the hardware
//! feature the paper highlights for "small amounts of data without
//! triggering unnecessary thread migrations" — so Emu GUPS is *not*
//! migration-bound. On the Xeon, each update is a random line fetch plus
//! dirtying store.

use desim::rng::{trial_seed, uniform_indices};
use emu_core::prelude::*;

/// Configuration of one GUPS run.
#[derive(Clone, Debug)]
pub struct GupsConfig {
    /// Table size in 8-byte words.
    pub table_words: u64,
    /// Concurrent update threads.
    pub nthreads: usize,
    /// Updates issued by each thread.
    pub updates_per_thread: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GupsConfig {
    fn default() -> Self {
        GupsConfig {
            table_words: 1 << 22,
            nthreads: 256,
            updates_per_thread: 4096,
            seed: desim::rng::DEFAULT_SEED,
        }
    }
}

impl GupsConfig {
    /// Total updates across all threads.
    pub fn total_updates(&self) -> u64 {
        self.nthreads as u64 * self.updates_per_thread as u64
    }
}

/// Result of one GUPS run.
#[derive(Debug, Clone)]
pub struct GupsResult {
    /// Total updates performed.
    pub updates: u64,
    /// Giga-updates per second.
    pub gups: f64,
    /// Thread migrations during the run (0 expected on Emu — atomics
    /// don't migrate; always 0 on CPU).
    pub migrations: u64,
    /// Makespan.
    pub makespan: desim::time::Time,
}

struct EmuUpdater {
    table: ArrayHandle,
    targets: Vec<u64>,
    pos: usize,
    phase: u8,
}

impl Kernel for EmuUpdater {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        if self.pos >= self.targets.len() {
            return Op::Quit;
        }
        match self.phase {
            0 => {
                self.phase = 1;
                let w = self.targets[self.pos];
                Op::AtomicAdd {
                    addr: self.table.addr(w, ctx.here),
                    bytes: 8,
                }
            }
            _ => {
                self.phase = 0;
                self.pos += 1;
                // XOR + index generation.
                Op::Compute { cycles: 8 }
            }
        }
    }
}

/// Run GUPS on the Emu machine `cfg`; the table is striped across all
/// nodelets and updates are remote atomics.
pub fn run_gups_emu(cfg: &MachineConfig, gc: &GupsConfig) -> Result<GupsResult, SimError> {
    let mut ms = MemSpace::new(cfg.total_nodelets());
    let table = ms.striped(gc.table_words, 8);
    let mut engine = Engine::new(cfg.clone())?;
    let nodelets = cfg.total_nodelets();
    for t in 0..gc.nthreads {
        let targets = uniform_indices(
            gc.updates_per_thread,
            gc.table_words,
            trial_seed(gc.seed, t as u64),
        );
        // Spread threads across nodelets (remote-spawn in spirit).
        engine.spawn_at(
            NodeletId((t % nodelets as usize) as u32),
            Box::new(EmuUpdater {
                table: table.clone(),
                targets,
                pos: 0,
                phase: 0,
            }),
        )?;
    }
    let report = engine.run()?;
    Ok(GupsResult {
        updates: gc.total_updates(),
        gups: gc.total_updates() as f64 / report.makespan.secs_f64() / 1e9,
        migrations: report.total_migrations(),
        makespan: report.makespan,
    })
}

/// CPU-side GUPS.
pub mod cpu {
    use super::*;
    use xeon_sim::prelude::*;

    struct CpuUpdater {
        base: u64,
        targets: Vec<u64>,
        pos: usize,
        phase: u8,
    }

    impl CpuKernel for CpuUpdater {
        fn step(&mut self, _ctx: &CpuCtx) -> CpuOp {
            if self.pos >= self.targets.len() {
                return CpuOp::Quit;
            }
            let addr = self.base + self.targets[self.pos] * 8;
            match self.phase {
                0 => {
                    self.phase = 1;
                    CpuOp::Load { addr, bytes: 8 }
                }
                1 => {
                    self.phase = 2;
                    CpuOp::Store { addr, bytes: 8 }
                }
                _ => {
                    self.phase = 0;
                    self.pos += 1;
                    CpuOp::Compute { cycles: 4 }
                }
            }
        }
    }

    /// Run GUPS on the CPU platform `cfg` (read-modify-write per update).
    pub fn run_gups_cpu(cfg: &CpuConfig, gc: &GupsConfig) -> GupsResult {
        let mut engine = CpuEngine::new(cfg.clone());
        for t in 0..gc.nthreads {
            let targets = uniform_indices(
                gc.updates_per_thread,
                gc.table_words,
                trial_seed(gc.seed, t as u64),
            );
            engine.add_thread(Box::new(CpuUpdater {
                base: 0x100_0000_0000,
                targets,
                pos: 0,
                phase: 0,
            }));
        }
        let report = engine.run();
        GupsResult {
            updates: gc.total_updates(),
            gups: gc.total_updates() as f64 / report.makespan.secs_f64() / 1e9,
            migrations: 0,
            makespan: report.makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::presets;

    fn small() -> GupsConfig {
        GupsConfig {
            table_words: 1 << 12,
            nthreads: 16,
            updates_per_thread: 256,
            seed: 5,
        }
    }

    #[test]
    fn emu_gups_never_migrates() {
        let r = run_gups_emu(&presets::chick_prototype(), &small()).unwrap();
        assert_eq!(r.migrations, 0, "memory-side atomics must not migrate");
        assert_eq!(r.updates, 16 * 256);
        assert!(r.gups > 0.0);
    }

    #[test]
    fn cpu_gups_runs() {
        let r = cpu::run_gups_cpu(&xeon_sim::config::sandy_bridge(), &small());
        assert_eq!(r.updates, 16 * 256);
        assert!(r.gups > 0.0);
    }

    #[test]
    fn more_threads_more_gups_on_emu() {
        let cfg = presets::chick_prototype();
        let g = |threads| {
            run_gups_emu(
                &cfg,
                &GupsConfig {
                    nthreads: threads,
                    ..small()
                },
            )
            .unwrap()
            .gups
        };
        assert!(g(64) > 2.0 * g(4));
    }
}
