//! CSR SpMV on the Emu with the paper's three data layouts (Fig 3, 9a).
//!
//! * **local** — every array `mw_localmalloc`'d on nodelet 0: no
//!   migrations, but only one nodelet's cores and channel do any work;
//! * **1D** — `row_ptr`, `col_idx`, `vals` striped element-wise across
//!   nodelets (`mw_malloc1dlong`), `x` replicated, `y` on nodelet 0:
//!   maximal parallelism, but walking a row's consecutive nonzeros hops
//!   nodelets on *every element* — a migration storm;
//! * **2D** — the paper's custom two-stage allocation: each row's data
//!   contiguous on the nodelet that owns the row (rows dealt round-robin),
//!   per-nodelet row-length arrays, `x` replicated, `y` written to
//!   nodelet 0 with posted remote stores: no migrations in the inner loop.
//!
//! Work is divided `grain`-nonzeros at a time (the paper found tiny
//! grains — 16 elements — best on the Emu, vs 16384 on the Xeon) and the
//! kernels compute the real output vector, verified against
//! [`spmat::CsrMatrix::spmv`].

use desim::stats::Bandwidth;
use emu_core::prelude::*;
use spmat::CsrMatrix;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Floating multiply-add + loop bookkeeping per nonzero on the Gossamer
/// soft core. FP on the FPGA prototype is multi-cycle and, per thread,
/// unpipelined — the dominant per-element cost (calibrated so the 2D
/// layout lands in the paper's few-hundred-MB/s range, Fig 9a).
pub const FMA_CYCLES: u32 = 80;
/// Per-row bookkeeping cycles (pointer setup, accumulator init, store).
pub const ROW_OVERHEAD_CYCLES: u32 = 20;

/// The deterministic input vector used by all SpMV benchmarks:
/// `x[j] = 1 + (j mod 97)`.
pub fn x_value(j: u32) -> f64 {
    1.0 + (j % 97) as f64
}

/// Materialize the input vector for an `ncols`-wide matrix.
pub fn x_vector(ncols: u32) -> Vec<f64> {
    (0..ncols).map(x_value).collect()
}

/// The three Emu data layouts of Fig 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EmuLayout {
    /// Everything on nodelet 0.
    Local,
    /// Matrix arrays striped element-wise; `x` replicated.
    OneD,
    /// Row-contiguous per-nodelet allocation; `x` replicated.
    TwoD,
}

impl EmuLayout {
    /// All layouts in the paper's order.
    pub const ALL: [EmuLayout; 3] = [EmuLayout::Local, EmuLayout::OneD, EmuLayout::TwoD];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EmuLayout::Local => "local",
            EmuLayout::OneD => "1D",
            EmuLayout::TwoD => "2D",
        }
    }
}

/// Configuration of one Emu SpMV run.
#[derive(Clone, Debug)]
pub struct EmuSpmvConfig {
    /// Data layout.
    pub layout: EmuLayout,
    /// Target nonzeros per spawned task (the paper's "grain"; 16 works
    /// best on the Emu).
    pub grain_nnz: usize,
}

impl Default for EmuSpmvConfig {
    fn default() -> Self {
        EmuSpmvConfig {
            layout: EmuLayout::TwoD,
            grain_nnz: 16,
        }
    }
}

/// Result of one Emu SpMV run.
#[derive(Debug)]
pub struct EmuSpmvResult {
    /// Effective bandwidth: [`CsrMatrix::spmv_bytes`] / makespan.
    pub bandwidth: Bandwidth,
    /// The computed output vector.
    pub y: Vec<f64>,
    /// Total thread migrations during the multiply.
    pub migrations: u64,
    /// Total threadlets spawned.
    pub spawns: u64,
    /// Full machine report.
    pub report: RunReport,
}

/// How one task kernel finds its rows: `row = first + k * stride`.
#[derive(Clone, Copy, Debug)]
struct RowChunk {
    first: u32,
    count: u32,
    stride: u32,
}

/// Where each array element of the 2D layout lives.
struct TwoDMap {
    /// Owner nodelet of each row (`r % nodelets`).
    nodelets: u32,
    /// Per-row base offset within its owner's blob.
    row_offset: Vec<u64>,
}

impl TwoDMap {
    fn build(m: &CsrMatrix, nodelets: u32) -> TwoDMap {
        let mut next_offset = vec![0u64; nodelets as usize];
        let mut row_offset = vec![0u64; m.nrows() as usize];
        for r in 0..m.nrows() {
            let owner = (r % nodelets) as usize;
            row_offset[r as usize] = next_offset[owner];
            next_offset[owner] += m.row_nnz(r) * 16; // val + col per nnz
        }
        TwoDMap {
            nodelets,
            row_offset,
        }
    }

    fn addr_of(&self, row: u32, k_in_row: u64, which: u64) -> GlobalAddr {
        let owner = NodeletId(row % self.nodelets);
        // vals and cols interleave in the blob; `which` picks one.
        let offset = 0x100_0000 + self.row_offset[row as usize] + k_in_row * 16 + which * 8;
        GlobalAddr::new(owner, offset)
    }
}

/// Shared immutable state for all task kernels of one run.
struct SpmvShared {
    matrix: Arc<CsrMatrix>,
    layout: EmuLayout,
    row_ptr: ArrayHandle,
    vals: ArrayHandle,
    cols: ArrayHandle,
    x: ArrayHandle,
    y: ArrayHandle,
    twod: Option<TwoDMap>,
    y_out: Mutex<Vec<f64>>,
    rows_done: AtomicU64,
}

/// One task: multiply a chunk of rows.
struct SpmvTask {
    sh: Arc<SpmvShared>,
    chunk: RowChunk,
    k: u32,    // row index within chunk
    j: u64,    // nnz index within row
    phase: u8, // per-row op sequence position
    acc: f64,
    xv: f64,
    cur_val: f64,
}

impl SpmvTask {
    fn row(&self) -> u32 {
        self.chunk.first + self.k * self.chunk.stride
    }
}

impl Kernel for SpmvTask {
    fn step(&mut self, ctx: &KernelCtx) -> Op {
        loop {
            if self.k >= self.chunk.count {
                return Op::Quit;
            }
            let r = self.row();
            let sh = &self.sh;
            let m = &sh.matrix;
            let range = m.row_range(r);
            let row_len = (range.end - range.start) as u64;
            match self.phase {
                // Row-pointer loads: 2 for local/1D (r and r+1), 1 for 2D
                // (precomputed per-nodelet length array, always local).
                0 => {
                    self.phase = if sh.layout == EmuLayout::TwoD { 2 } else { 1 };
                    self.acc = 0.0;
                    self.j = 0;
                    return Op::Load {
                        addr: sh.row_ptr.addr(r as u64, ctx.here),
                        bytes: 8,
                    };
                }
                1 => {
                    self.phase = 2;
                    return Op::Load {
                        addr: sh.row_ptr.addr(r as u64 + 1, ctx.here),
                        bytes: 8,
                    };
                }
                // Inner loop over nonzeros: val, col, x[col], fma.
                2 => {
                    if self.j >= row_len {
                        self.phase = 6;
                        continue;
                    }
                    self.phase = 3;
                    let k = range.start as u64 + self.j;
                    self.cur_val = m.vals()[k as usize];
                    let addr = match (&sh.twod, sh.layout) {
                        (Some(t), EmuLayout::TwoD) => t.addr_of(r, self.j, 0),
                        _ => sh.vals.addr(k, ctx.here),
                    };
                    return Op::Load { addr, bytes: 8 };
                }
                3 => {
                    self.phase = 4;
                    let k = range.start as u64 + self.j;
                    let col = m.col_idx()[k as usize];
                    self.xv = x_value(col);
                    let addr = match (&sh.twod, sh.layout) {
                        (Some(t), EmuLayout::TwoD) => t.addr_of(r, self.j, 1),
                        _ => sh.cols.addr(k, ctx.here),
                    };
                    return Op::Load { addr, bytes: 8 };
                }
                4 => {
                    self.phase = 5;
                    let k = range.start as u64 + self.j;
                    let col = m.col_idx()[k as usize] as u64;
                    return Op::Load {
                        addr: sh.x.addr(col, ctx.here),
                        bytes: 8,
                    };
                }
                5 => {
                    self.phase = 2;
                    self.acc += self.cur_val * self.xv;
                    self.j += 1;
                    return Op::Compute { cycles: FMA_CYCLES };
                }
                // Row epilogue: record the result, store y[r], bookkeeping.
                6 => {
                    self.phase = 7;
                    self.sh.y_out.lock().unwrap()[r as usize] = self.acc;
                    self.sh.rows_done.fetch_add(1, Ordering::Relaxed);
                    return Op::Store {
                        addr: sh.y.addr(r as u64, ctx.here),
                        bytes: 8,
                    };
                }
                7 => {
                    self.phase = 0;
                    self.k += 1;
                    return Op::Compute {
                        cycles: ROW_OVERHEAD_CYCLES,
                    };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// A spawner that serially spawns a list of prepared task kernels, then
/// quits. Placement per task.
struct TaskSpawner {
    tasks: Vec<Option<(Box<dyn Kernel>, Placement)>>,
    next: usize,
}

impl Kernel for TaskSpawner {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        while self.next < self.tasks.len() {
            let slot = self.tasks[self.next].take();
            self.next += 1;
            if let Some((kernel, place)) = slot {
                return Op::Spawn { kernel, place };
            }
        }
        Op::Quit
    }
}

/// Split `rows` (strided arithmetic sequences) into grain-sized chunks.
fn chunk_rows(
    m: &CsrMatrix,
    first: u32,
    count: u32,
    stride: u32,
    grain_nnz: usize,
) -> Vec<RowChunk> {
    let mut out = Vec::new();
    let mut start = 0u32;
    let mut acc = 0u64;
    for k in 0..count {
        let r = first + k * stride;
        acc += m.row_nnz(r);
        if acc as usize >= grain_nnz || k == count - 1 {
            out.push(RowChunk {
                first: first + start * stride,
                count: k - start + 1,
                stride,
            });
            start = k + 1;
            acc = 0;
        }
    }
    out
}

/// Run SpMV on the Emu machine `cfg`.
pub fn run_spmv_emu(
    cfg: &MachineConfig,
    m: Arc<CsrMatrix>,
    sc: &EmuSpmvConfig,
) -> Result<EmuSpmvResult, SimError> {
    let nodelets = cfg.total_nodelets();
    let mut ms = MemSpace::new(nodelets);
    let n = m.nrows();
    let nnz = m.nnz();
    let (row_ptr, vals, cols, x, y) = match sc.layout {
        EmuLayout::Local => (
            ms.local(NodeletId(0), n as u64 + 1, 8),
            ms.local(NodeletId(0), nnz, 8),
            ms.local(NodeletId(0), nnz, 8),
            ms.local(NodeletId(0), m.ncols() as u64, 8),
            ms.local(NodeletId(0), n as u64, 8),
        ),
        EmuLayout::OneD | EmuLayout::TwoD => (
            ms.striped(n as u64 + 1, 8),
            ms.striped(nnz.max(1), 8),
            ms.striped(nnz.max(1), 8),
            ms.replicated(m.ncols() as u64, 8),
            ms.local(NodeletId(0), n as u64, 8),
        ),
    };
    let twod = (sc.layout == EmuLayout::TwoD).then(|| TwoDMap::build(&m, nodelets));
    let shared = Arc::new(SpmvShared {
        matrix: Arc::clone(&m),
        layout: sc.layout,
        row_ptr,
        vals,
        cols,
        x,
        y,
        twod,
        y_out: Mutex::new(vec![0.0; n as usize]),
        rows_done: AtomicU64::new(0),
    });

    let task = |chunk: RowChunk| -> Box<dyn Kernel> {
        Box::new(SpmvTask {
            sh: Arc::clone(&shared),
            chunk,
            k: 0,
            j: 0,
            phase: 0,
            acc: 0.0,
            xv: 0.0,
            cur_val: 0.0,
        })
    };

    let mut engine = Engine::new(cfg.clone())?;
    match sc.layout {
        EmuLayout::Local | EmuLayout::OneD => {
            // cilk_spawn loop from the main thread on nodelet 0.
            let tasks: Vec<_> = chunk_rows(&m, 0, n, 1, sc.grain_nnz)
                .into_iter()
                .map(|c| Some((task(c), Placement::Here)))
                .collect();
            engine.spawn_at(NodeletId(0), Box::new(TaskSpawner { tasks, next: 0 }))?;
        }
        EmuLayout::TwoD => {
            // One leader per nodelet spawns tasks for its own rows — the
            // "smart migration" recipe of Section V-A.
            let leader_tasks: Vec<Vec<_>> = (0..nodelets)
                .map(|k| {
                    let count = emu_core::spawn::workers_on(k, n as usize, nodelets) as u32;
                    chunk_rows(&m, k, count, nodelets, sc.grain_nnz)
                        .into_iter()
                        .map(|c| Some((task(c), Placement::Here)))
                        .collect()
                })
                .collect();
            let root_tasks: Vec<_> = leader_tasks
                .into_iter()
                .enumerate()
                .filter(|(_, ts)| !ts.is_empty())
                .map(|(k, tasks)| {
                    let leader: Box<dyn Kernel> = Box::new(TaskSpawner { tasks, next: 0 });
                    Some((leader, Placement::On(NodeletId(k as u32))))
                })
                .collect();
            engine.spawn_at(
                NodeletId(0),
                Box::new(TaskSpawner {
                    tasks: root_tasks,
                    next: 0,
                }),
            )?;
        }
    }
    let report = engine.run()?;
    assert_eq!(
        shared.rows_done.load(Ordering::Relaxed),
        n as u64,
        "not every row was multiplied"
    );
    let y_out = shared.y_out.lock().unwrap().clone();
    Ok(EmuSpmvResult {
        bandwidth: report.bandwidth_for(m.spmv_bytes()),
        y: y_out,
        migrations: report.total_migrations(),
        spawns: report.total_spawns(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use emu_core::presets;
    use spmat::{laplacian, LaplacianSpec};

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn check_layout(layout: EmuLayout) -> EmuSpmvResult {
        let m = Arc::new(laplacian(LaplacianSpec::paper(12)));
        let reference = m.spmv(&x_vector(m.ncols()));
        let cfg = presets::chick_prototype();
        let r = run_spmv_emu(
            &cfg,
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: 16,
            },
        )
        .unwrap();
        assert!(
            max_abs_diff(&r.y, &reference) < 1e-9,
            "{}: wrong result",
            layout.name()
        );
        r
    }

    #[test]
    fn local_layout_correct_and_contained() {
        let r = check_layout(EmuLayout::Local);
        assert_eq!(r.migrations, 0, "local layout must not migrate");
        assert!(r.report.nodelets[1..].iter().all(|c| c.bytes_total() == 0));
    }

    #[test]
    fn one_d_layout_correct_and_migration_heavy() {
        let r = check_layout(EmuLayout::OneD);
        let m = laplacian(LaplacianSpec::paper(12));
        // Striding nodelets per element: migrations comparable to nnz.
        assert!(
            r.migrations > m.nnz() / 2,
            "1D should migrate per element: {} of {}",
            r.migrations,
            m.nnz()
        );
    }

    #[test]
    fn two_d_layout_correct_with_few_migrations() {
        let r = check_layout(EmuLayout::TwoD);
        let m = laplacian(LaplacianSpec::paper(12));
        // Only the leader remote-spawns migrate; the inner loop is local.
        assert!(
            r.migrations < m.nrows() as u64,
            "2D inner loop must be migration-free: {} migrations",
            r.migrations
        );
    }

    #[test]
    fn two_d_beats_one_d_beats_nothing() {
        let m = Arc::new(laplacian(LaplacianSpec::paper(16)));
        let cfg = presets::chick_prototype();
        let bw = |layout| {
            run_spmv_emu(
                &cfg,
                Arc::clone(&m),
                &EmuSpmvConfig {
                    layout,
                    grain_nnz: 16,
                },
            )
            .unwrap()
            .bandwidth
            .mb_per_sec()
        };
        let local = bw(EmuLayout::Local);
        let two_d = bw(EmuLayout::TwoD);
        assert!(
            two_d > 2.0 * local,
            "2D {two_d} MB/s should far exceed local {local} MB/s"
        );
    }

    #[test]
    fn chunking_covers_all_rows_exactly_once() {
        let m = laplacian(LaplacianSpec::paper(10));
        for grain in [1usize, 16, 1000, 10_000_000] {
            let chunks = chunk_rows(&m, 0, m.nrows(), 1, grain);
            let mut seen = vec![false; m.nrows() as usize];
            for c in &chunks {
                for k in 0..c.count {
                    let r = (c.first + k * c.stride) as usize;
                    assert!(!seen[r]);
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "grain {grain}");
        }
    }

    #[test]
    fn strided_chunking_stays_on_stride() {
        let m = laplacian(LaplacianSpec::paper(10));
        let count = emu_core::spawn::workers_on(3, m.nrows() as usize, 8) as u32;
        let chunks = chunk_rows(&m, 3, count, 8, 16);
        for c in &chunks {
            for k in 0..c.count {
                assert_eq!((c.first + k * c.stride) % 8, 3);
            }
        }
    }

    #[test]
    fn smaller_grain_spawns_more_tasks() {
        let m = Arc::new(laplacian(LaplacianSpec::paper(12)));
        let cfg = presets::chick_prototype();
        let spawns = |grain| {
            run_spmv_emu(
                &cfg,
                Arc::clone(&m),
                &EmuSpmvConfig {
                    layout: EmuLayout::TwoD,
                    grain_nnz: grain,
                },
            )
            .unwrap()
            .spawns
        };
        assert!(spawns(16) > 2 * spawns(256));
    }
}
