//! Randomized (seeded, deterministic) tests of the benchmark workload
//! generators and the functional results of the benchmark kernels.
//! Each test sweeps a fixed set of seeds so failures are reproducible
//! without any external property-testing framework.

use emu_core::prelude::*;
use membench::chase::{run_chase_emu, traversal_order, ChaseConfig, ShuffleMode};
use membench::spmv_emu::{run_spmv_emu, x_vector, EmuLayout, EmuSpmvConfig};
use membench::stream::{run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel};
use std::sync::Arc;
use test_support::cases;

const CASES: u64 = 48;

/// Traversal orders are permutations that visit whole blocks, for all
/// modes and any geometry.
#[test]
fn traversal_order_permutation() {
    cases(CASES, 0x7AE5, |_case, rng| {
        let blocks = rng.gen_range(1..32usize);
        let block = rng.gen_range(1..64usize);
        let mode = ShuffleMode::ALL[rng.gen_range(0..ShuffleMode::ALL.len())];
        let seed = rng.next_u64();
        let n = blocks * block;
        let o = traversal_order(n, block, mode, seed);
        let mut sorted = o.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        // Block atomicity: each consecutive chunk is one block.
        for chunk in o.chunks(block) {
            let b = chunk[0] as usize / block;
            assert!(chunk.iter().all(|&e| e as usize / block == b));
        }
    });
}

/// The chase checksum is correct for arbitrary configurations.
#[test]
fn chase_checksum_always_right() {
    cases(CASES, 0xC4A5E, |_case, rng| {
        let blocks = rng.gen_range(1..8usize);
        let block = rng.gen_range(1..32usize);
        let cc = ChaseConfig {
            elems_per_list: blocks * block,
            nlists: rng.gen_range(1..10usize),
            block_elems: block,
            mode: ShuffleMode::ALL[rng.gen_range(0..ShuffleMode::ALL.len())],
            seed: rng.next_u64(),
        };
        let r = run_chase_emu(&presets::chick_prototype(), &cc).unwrap();
        assert_eq!(r.checksum, cc.expected_checksum());
    });
}

/// STREAM checksums hold for every kernel x strategy x thread count.
#[test]
fn stream_checksum_always_right() {
    cases(CASES, 0x57AEA, |_case, rng| {
        let kernel = [
            StreamKernel::Add,
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Triad,
        ][rng.gen_range(0..4usize)];
        let n = 1u64 << rng.gen_range(6..11u32);
        let threads = rng.gen_range(1..70usize);
        let strategy = SpawnStrategy::ALL[rng.gen_range(0..SpawnStrategy::ALL.len())];
        let r = run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: n,
                nthreads: threads,
                strategy,
                kernel,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.checksum, stream_checksum(n, kernel));
    });
}

/// SpMV on random sparse matrices is exact in every layout, for any
/// grain size.
#[test]
fn spmv_exact_on_random_matrices() {
    cases(CASES, 0x59F4, |_case, rng| {
        let n = rng.gen_range(10..60u32);
        let nnz_per_row = rng.gen_range(1..6u32);
        let layout = EmuLayout::ALL[rng.gen_range(0..EmuLayout::ALL.len())];
        let grain = rng.gen_range(1..64usize);
        let seed = rng.next_u64();
        let m = Arc::new(spmat::gen::random_uniform(n, n, nnz_per_row, seed));
        let reference = m.spmv(&x_vector(m.ncols()));
        let r = run_spmv_emu(
            &presets::chick_prototype(),
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout,
                grain_nnz: grain,
            },
        )
        .unwrap();
        for (i, (a, b)) in reference.iter().zip(&r.y).enumerate() {
            assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
        }
    });
}

/// Migration count bounds for the chase: at most one migration per
/// element.
#[test]
fn chase_migrations_bounded() {
    cases(CASES, 0xB0DD, |_case, rng| {
        let blocks = rng.gen_range(2..10usize);
        let block = rng.gen_range(1..16usize);
        let cc = ChaseConfig {
            elems_per_list: blocks * block,
            nlists: rng.gen_range(1..6usize),
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed: rng.next_u64(),
        };
        let r = run_chase_emu(&presets::chick_prototype(), &cc).unwrap();
        assert!(
            r.migrations <= cc.total_elems(),
            "more migrations than elements"
        );
    });
}
