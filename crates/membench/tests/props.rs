//! Property-based tests of the benchmark workload generators and the
//! functional results of the benchmark kernels.

use emu_core::prelude::*;
use membench::chase::{run_chase_emu, traversal_order, ChaseConfig, ShuffleMode};
use membench::spmv_emu::{run_spmv_emu, x_vector, EmuLayout, EmuSpmvConfig};
use membench::stream::{run_stream_emu, stream_checksum, EmuStreamConfig, StreamKernel};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Traversal orders are permutations that visit whole blocks, for all
    /// modes and any geometry.
    #[test]
    fn traversal_order_permutation(
        blocks in 1usize..32,
        block in 1usize..64,
        mode_idx in 0usize..4,
        seed in any::<u64>()
    ) {
        let n = blocks * block;
        let mode = ShuffleMode::ALL[mode_idx];
        let o = traversal_order(n, block, mode, seed);
        let mut sorted = o.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
        // Block atomicity: each consecutive chunk is one block.
        for chunk in o.chunks(block) {
            let b = chunk[0] as usize / block;
            prop_assert!(chunk.iter().all(|&e| e as usize / block == b));
        }
    }

    /// The chase checksum is correct for arbitrary configurations.
    #[test]
    fn chase_checksum_always_right(
        lists in 1usize..10,
        blocks in 1usize..8,
        block in 1usize..32,
        mode_idx in 0usize..4,
        seed in any::<u64>()
    ) {
        let cc = ChaseConfig {
            elems_per_list: blocks * block,
            nlists: lists,
            block_elems: block,
            mode: ShuffleMode::ALL[mode_idx],
            seed,
        };
        let r = run_chase_emu(&presets::chick_prototype(), &cc);
        prop_assert_eq!(r.checksum, cc.expected_checksum());
    }

    /// STREAM checksums hold for every kernel x strategy x thread count.
    #[test]
    fn stream_checksum_always_right(
        n_log in 6u32..11,
        threads in 1usize..70,
        strategy_idx in 0usize..4,
        kernel_idx in 0usize..4,
    ) {
        let kernel = [
            StreamKernel::Add,
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Triad,
        ][kernel_idx];
        let n = 1u64 << n_log;
        let r = run_stream_emu(
            &presets::chick_prototype(),
            &EmuStreamConfig {
                total_elems: n,
                nthreads: threads,
                strategy: SpawnStrategy::ALL[strategy_idx],
                kernel,
                ..Default::default()
            },
        );
        prop_assert_eq!(r.checksum, stream_checksum(n, kernel));
    }

    /// SpMV on random sparse matrices is exact in every layout, for any
    /// grain size.
    #[test]
    fn spmv_exact_on_random_matrices(
        n in 10u32..60,
        nnz_per_row in 1u32..6,
        layout_idx in 0usize..3,
        grain in 1usize..64,
        seed in any::<u64>()
    ) {
        let m = Arc::new(spmat::gen::random_uniform(n, n, nnz_per_row, seed));
        let reference = m.spmv(&x_vector(m.ncols()));
        let r = run_spmv_emu(
            &presets::chick_prototype(),
            Arc::clone(&m),
            &EmuSpmvConfig {
                layout: EmuLayout::ALL[layout_idx],
                grain_nnz: grain,
            },
        );
        for (i, (a, b)) in reference.iter().zip(&r.y).enumerate() {
            prop_assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
        }
    }

    /// Migration count bounds for the chase: at most one migration per
    /// element, at least one per off-nodelet block transition is
    /// impossible to undercut (lower bound: 0).
    #[test]
    fn chase_migrations_bounded(
        lists in 1usize..6,
        blocks in 2usize..10,
        block in 1usize..16,
        seed in any::<u64>()
    ) {
        let cc = ChaseConfig {
            elems_per_list: blocks * block,
            nlists: lists,
            block_elems: block,
            mode: ShuffleMode::FullBlock,
            seed,
        };
        let r = run_chase_emu(&presets::chick_prototype(), &cc);
        prop_assert!(r.migrations <= cc.total_elems(), "more migrations than elements");
    }
}
