//! Level-synchronous BFS on the Emu model — the paper's motivating
//! "streaming graph analytics" access pattern, in two flavours that
//! mirror its SpMV layout lesson:
//!
//! * [`BfsMode::Migrating`] — the naive port: for every discovered
//!   neighbor `v` the thread *reads* `visited[v]`, which lives on `v`'s
//!   home nodelet — a migration per traversed edge, the BFS analogue of
//!   the 1D SpMV layout;
//! * [`BfsMode::RemoteFlags`] — the "smart thread migration" version
//!   (Section V-A): discovery is published with **memory-side remote
//!   atomics** (no migration); the next level's threads start at their
//!   vertices' homes and read everything locally — the analogue of the
//!   2D layout plus replicated inputs.
//!
//! Both variants compute exact BFS levels, verified against
//! [`Stinger::bfs_reference`]. Each level is one engine run (the global
//! barrier of level-synchronous BFS); times accumulate across levels.

use crate::stinger::Stinger;
use desim::time::Time;
use emu_core::prelude::*;
use std::sync::{Arc, Mutex};

/// Traversal strategy (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BfsMode {
    /// Check `visited[v]` with a (migrating) remote read per edge.
    Migrating,
    /// Publish discovery with remote atomics; scan locally next level.
    RemoteFlags,
}

impl BfsMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BfsMode::Migrating => "migrating",
            BfsMode::RemoteFlags => "remote_flags",
        }
    }
}

/// Result of one BFS run.
#[derive(Debug)]
pub struct BfsResult {
    /// Level of each vertex (`u32::MAX` = unreachable).
    pub levels: Vec<u32>,
    /// Number of BFS levels executed.
    pub depth: u32,
    /// Directed edges traversed.
    pub edges_traversed: u64,
    /// Total simulated time across all levels.
    pub total_time: Time,
    /// Total thread migrations across all levels.
    pub migrations: u64,
    /// Traversed edges per second.
    pub teps: f64,
    /// Per-level machine reports, in level order (one engine run per
    /// level-synchronous step), for auditing and fingerprinting.
    pub reports: Vec<emu_core::metrics::RunReport>,
}

/// Cycles of frontier bookkeeping per traversed edge.
const EDGE_CYCLES: u32 = 6;

/// Shared per-level state: the functional BFS bookkeeping.
struct LevelState {
    g: Arc<Stinger>,
    depth: u32,
    visited: Mutex<Vec<bool>>,
    levels: Mutex<Vec<u32>>,
    next: Mutex<Vec<u32>>,
    edges: std::sync::atomic::AtomicU64,
}

/// Address of `visited[v]` / `pending[v]` — striped by vertex, so it is
/// local exactly on `v`'s home nodelet.
fn flag_addr(g: &Stinger, v: u32) -> GlobalAddr {
    let home = g.home(v);
    GlobalAddr::new(home, 0x2000_0000 + (v as u64 / 8) * 8)
}

/// One frontier worker: processes a strided slice of the frontier.
struct FrontierWorker {
    st: Arc<LevelState>,
    frontier: Arc<Vec<u32>>,
    idx: usize,
    step: usize,
    mode: BfsMode,
    /// (block index, neighbor index) cursor within the current vertex.
    bi: usize,
    ni: usize,
    phase: u8,
}

impl Kernel for FrontierWorker {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        loop {
            if self.idx >= self.frontier.len() {
                return Op::Quit;
            }
            let u = self.frontier[self.idx];
            let g = &self.st.g;
            match self.phase {
                // Load the vertex record (and, in RemoteFlags mode, the
                // pending flag written by the previous level) — both local
                // after the initial migration to u's home.
                0 => {
                    self.phase = 1;
                    self.bi = 0;
                    self.ni = 0;
                    return Op::Load {
                        addr: g.vertex_addr(u),
                        bytes: if self.mode == BfsMode::RemoteFlags {
                            16
                        } else {
                            8
                        },
                    };
                }
                // Load the current edge block (local: blocks live on u's
                // home), then walk its neighbors.
                1 => {
                    if self.bi >= g.blocks(u).len() {
                        // Vertex finished.
                        self.idx += self.step;
                        self.phase = 0;
                        continue;
                    }
                    self.phase = 2;
                    return Op::Load {
                        addr: g.blocks(u)[self.bi].addr,
                        bytes: 16,
                    };
                }
                // Per-neighbor handling.
                2 => {
                    let block = &g.blocks(u)[self.bi];
                    if self.ni >= block.neighbors.len() {
                        self.bi += 1;
                        self.ni = 0;
                        self.phase = 1;
                        continue;
                    }
                    let v = block.neighbors[self.ni];
                    self.ni += 1;
                    self.st
                        .edges
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match self.mode {
                        BfsMode::Migrating => {
                            // Read visited[v] at v's home — a migration —
                            // then claim it if unvisited.
                            self.phase = 3;
                            // Functional claim happens now (simulation
                            // event order = claim order).
                            let claimed = {
                                let mut vis = self.st.visited.lock().unwrap();
                                if !vis[v as usize] {
                                    vis[v as usize] = true;
                                    true
                                } else {
                                    false
                                }
                            };
                            if claimed {
                                self.st.levels.lock().unwrap()[v as usize] = self.st.depth;
                                self.st.next.lock().unwrap().push(v);
                                // Claimed: read + write at v's home.
                                self.phase = 4;
                            }
                            return Op::Load {
                                addr: flag_addr(g, v),
                                bytes: 8,
                            };
                        }
                        BfsMode::RemoteFlags => {
                            // Publish with a memory-side atomic; no
                            // migration, no waiting. Dedup is resolved
                            // functionally (set semantics of the flag).
                            let fresh = {
                                let mut vis = self.st.visited.lock().unwrap();
                                if !vis[v as usize] {
                                    vis[v as usize] = true;
                                    true
                                } else {
                                    false
                                }
                            };
                            if fresh {
                                self.st.levels.lock().unwrap()[v as usize] = self.st.depth;
                                self.st.next.lock().unwrap().push(v);
                            }
                            self.phase = 5;
                            return Op::AtomicAdd {
                                addr: flag_addr(g, v),
                                bytes: 8,
                            };
                        }
                    }
                }
                // Migrating mode: unclaimed neighbor — just the read cost.
                3 => {
                    self.phase = 2;
                    return Op::Compute {
                        cycles: EDGE_CYCLES,
                    };
                }
                // Migrating mode: claimed neighbor — also write the flag
                // (local: we migrated to v's home for the read).
                4 => {
                    self.phase = 3;
                    let v_prev = {
                        // The flag we just read belongs to the neighbor we
                        // claimed; its address is recomputable from the
                        // level bookkeeping, but we can simply write the
                        // same address we loaded: the engine only needs
                        // the owner.
                        let block = &g.blocks(u)[self.bi];
                        block.neighbors[self.ni - 1]
                    };
                    return Op::Store {
                        addr: flag_addr(g, v_prev),
                        bytes: 8,
                    };
                }
                // RemoteFlags mode: per-edge bookkeeping.
                5 => {
                    self.phase = 2;
                    return Op::Compute {
                        cycles: EDGE_CYCLES,
                    };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Run a level-synchronous BFS from `src`.
pub fn run_bfs_emu(
    cfg: &MachineConfig,
    g: Arc<Stinger>,
    src: u32,
    mode: BfsMode,
    nthreads: usize,
) -> Result<BfsResult, SimError> {
    assert!(src < g.nv(), "source out of range");
    assert!(nthreads > 0);
    let nv = g.nv() as usize;
    let mut levels = vec![u32::MAX; nv];
    levels[src as usize] = 0;
    let mut visited = vec![false; nv];
    visited[src as usize] = true;
    let mut frontier = vec![src];
    let mut total_time = Time::ZERO;
    let mut migrations = 0u64;
    let mut edges = 0u64;
    let mut depth = 0u32;
    let mut reports = Vec::new();

    while !frontier.is_empty() {
        depth += 1;
        let st = Arc::new(LevelState {
            g: Arc::clone(&g),
            depth,
            visited: Mutex::new(std::mem::take(&mut visited)),
            levels: Mutex::new(std::mem::take(&mut levels)),
            next: Mutex::new(Vec::new()),
            edges: std::sync::atomic::AtomicU64::new(0),
        });
        let frontier_arc = Arc::new(frontier);
        let mut engine = Engine::new(cfg.clone())?;
        let workers = nthreads.min(frontier_arc.len());
        for t in 0..workers {
            let first = frontier_arc[t];
            engine.spawn_at(
                g.home(first),
                Box::new(FrontierWorker {
                    st: Arc::clone(&st),
                    frontier: Arc::clone(&frontier_arc),
                    idx: t,
                    step: workers,
                    mode,
                    bi: 0,
                    ni: 0,
                    phase: 0,
                }),
            )?;
        }
        let report = engine.run()?;
        total_time += report.makespan;
        migrations += report.total_migrations();
        edges += st.edges.load(std::sync::atomic::Ordering::Relaxed);
        reports.push(report);
        let st = Arc::try_unwrap(st).unwrap_or_else(|_| panic!("level state still shared"));
        visited = st.visited.into_inner().unwrap();
        levels = st.levels.into_inner().unwrap();
        frontier = st.next.into_inner().unwrap();
    }

    let teps = if total_time == Time::ZERO {
        0.0
    } else {
        edges as f64 / total_time.secs_f64()
    };
    // `depth` counted level iterations (including the final barren one);
    // report the deepest level actually assigned.
    let depth = levels
        .iter()
        .filter(|&&l| l != u32::MAX)
        .copied()
        .max()
        .unwrap_or(0);
    Ok(BfsResult {
        levels,
        depth,
        edges_traversed: edges,
        total_time,
        migrations,
        teps,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use emu_core::presets;

    fn check_levels(edges: &crate::gen::EdgeList, src: u32, mode: BfsMode) -> BfsResult {
        let g = Arc::new(Stinger::build_host(edges, 4, 8));
        let reference = g.bfs_reference(src);
        let r = run_bfs_emu(&presets::chick_prototype(), Arc::clone(&g), src, mode, 16).unwrap();
        assert_eq!(r.levels, reference, "{} wrong levels", mode.name());
        r
    }

    #[test]
    fn bfs_levels_exact_on_path() {
        for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
            let r = check_levels(&gen::path(20), 0, mode);
            assert_eq!(r.depth, 19);
        }
    }

    #[test]
    fn bfs_levels_exact_on_random_graphs() {
        for seed in [1u64, 2, 3] {
            let edges = gen::uniform(80, 400, seed);
            for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
                check_levels(&edges, 0, mode);
            }
        }
    }

    #[test]
    fn bfs_levels_exact_on_rmat() {
        let edges = gen::rmat(7, 600, 4);
        for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
            check_levels(&edges, 0, mode);
        }
    }

    #[test]
    fn remote_flags_barely_migrates() {
        let edges = gen::uniform(128, 800, 9);
        let naive = check_levels(&edges, 0, BfsMode::Migrating);
        let smart = check_levels(&edges, 0, BfsMode::RemoteFlags);
        assert!(
            naive.migrations > 5 * smart.migrations.max(1),
            "naive {} vs smart {}",
            naive.migrations,
            smart.migrations
        );
        assert_eq!(naive.edges_traversed, smart.edges_traversed);
    }

    #[test]
    fn smart_bfs_is_faster() {
        let edges = gen::uniform(256, 2000, 10);
        let naive = check_levels(&edges, 0, BfsMode::Migrating);
        let smart = check_levels(&edges, 0, BfsMode::RemoteFlags);
        assert!(
            smart.teps > naive.teps,
            "smart {} vs naive {} TEPS",
            smart.teps,
            naive.teps
        );
    }

    #[test]
    fn star_graph_single_level() {
        let r = check_levels(&gen::star(32), 0, BfsMode::RemoteFlags);
        assert_eq!(r.depth, 1);
        assert!(r.levels[1..].iter().all(|&l| l == 1));
    }
}
