//! Streaming edge insertion on the Emu model.
//!
//! The paper motivates the Emu with streaming graph analytics: edges
//! arrive continuously and must be folded into the structure. An
//! insertion of `(u, v)` touches both endpoints' homes — an inherently
//! migratory operation: the inserting threadlet migrates to `u`'s home,
//! scans `u`'s blocks for a duplicate, appends (or allocates a block),
//! then migrates to `v`'s home and repeats.

use crate::gen::EdgeList;
use crate::stinger::{InsertOutcome, Stinger};
use desim::time::Time;
use emu_core::prelude::*;
use std::sync::{Arc, Mutex};

/// Cycles to scan one edge block for a duplicate.
const SCAN_CYCLES: u32 = 8;
/// Extra cycles to allocate and link a fresh edge block.
const ALLOC_CYCLES: u32 = 40;

/// Result of a streaming-insertion run.
#[derive(Debug)]
pub struct InsertResult {
    /// The structure after all insertions (verify against
    /// [`Stinger::build_host`] via [`Stinger::canonical_adjacency`]).
    pub graph: Arc<Mutex<Stinger>>,
    /// Undirected edges processed.
    pub edges: u64,
    /// Undirected insertions per second.
    pub edges_per_sec: f64,
    /// Total thread migrations.
    pub migrations: u64,
    /// Makespan of the batch.
    pub makespan: Time,
    /// Full machine report.
    pub report: RunReport,
}

/// One worker inserting a slice of the edge stream.
struct Inserter {
    g: Arc<Mutex<Stinger>>,
    edges: Arc<Vec<(u32, u32)>>,
    idx: usize,
    step: usize,
    /// 0 = u-side, 1 = v-side of the current edge.
    side: u8,
    /// Block index being scanned within the current side.
    bi: usize,
    phase: u8,
    /// Address of the block the pending write targets (set at the
    /// mutation step, consumed by the store step).
    pending_store: Option<GlobalAddr>,
}

impl Inserter {
    fn endpoints(&self) -> (u32, u32) {
        let (u, v) = self.edges[self.idx];
        if self.side == 0 {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Move to the other side of the edge, or to the next edge.
    fn advance(&mut self) {
        if self.side == 0 {
            self.side = 1;
        } else {
            self.side = 0;
            self.idx += self.step;
        }
        self.phase = 0;
    }
}

impl Kernel for Inserter {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        loop {
            if self.idx >= self.edges.len() {
                return Op::Quit;
            }
            let (from, to) = self.endpoints();
            match self.phase {
                // Touch the vertex record — migrates to `from`'s home.
                0 => {
                    self.phase = 1;
                    self.bi = 0;
                    let addr = self.g.lock().unwrap().vertex_addr(from);
                    return Op::Load { addr, bytes: 8 };
                }
                // Scan existing blocks for a duplicate.
                1 => {
                    let (nblocks, addr) = {
                        let g = self.g.lock().unwrap();
                        let blocks = g.blocks(from);
                        (blocks.len(), blocks.get(self.bi).map(|b| b.addr))
                    };
                    if self.bi < nblocks {
                        self.bi += 1;
                        self.phase = 2;
                        return Op::Load {
                            addr: addr.expect("block index in range"),
                            bytes: 16,
                        };
                    }
                    // All blocks scanned: perform the insertion.
                    self.phase = 3;
                    continue;
                }
                2 => {
                    self.phase = 1;
                    return Op::Compute {
                        cycles: SCAN_CYCLES,
                    };
                }
                // Mutate the structure, then charge the write (and the
                // allocation, for a fresh block) before moving on.
                3 => {
                    let (outcome, addr) = {
                        let mut g = self.g.lock().unwrap();
                        let outcome = g.insert_directed(from, to);
                        let addr = g
                            .blocks(from)
                            .last()
                            .map(|b| b.addr)
                            .unwrap_or_else(|| g.vertex_addr(from));
                        (outcome, addr)
                    };
                    match outcome {
                        InsertOutcome::Duplicate => {
                            // Nothing written; move on directly.
                            self.advance();
                            continue;
                        }
                        InsertOutcome::Appended => {
                            self.pending_store = Some(addr);
                            self.phase = 5;
                            continue;
                        }
                        InsertOutcome::NewBlock => {
                            self.pending_store = Some(addr);
                            self.phase = 4;
                            return Op::Compute {
                                cycles: ALLOC_CYCLES,
                            };
                        }
                    }
                }
                // 4: allocation charged; 5: emit the write and advance.
                4 => {
                    self.phase = 5;
                    continue;
                }
                5 => {
                    let addr = self.pending_store.take().expect("pending write");
                    self.advance();
                    return Op::Store { addr, bytes: 16 };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Run a streaming-insertion batch with `nthreads` inserter threadlets
/// (edge `i` handled by thread `i % nthreads`, preserving a deterministic
/// interleaving).
pub fn run_insert_emu(
    cfg: &MachineConfig,
    edges: &EdgeList,
    nthreads: usize,
    block_cap: usize,
) -> Result<InsertResult, SimError> {
    assert!(nthreads > 0);
    let g = Arc::new(Mutex::new(Stinger::new(
        edges.nv,
        block_cap,
        cfg.total_nodelets(),
    )));
    let shared_edges = Arc::new(edges.edges.clone());
    let mut engine = Engine::new(cfg.clone())?;
    let nodelets = cfg.total_nodelets();
    for t in 0..nthreads.min(edges.edges.len()) {
        let first_u = shared_edges[t].0;
        engine.spawn_at(
            // Start each worker at its first edge's home nodelet.
            NodeletId(first_u % nodelets),
            Box::new(Inserter {
                g: Arc::clone(&g),
                edges: Arc::clone(&shared_edges),
                idx: t,
                step: nthreads,
                side: 0,
                bi: 0,
                phase: 0,
                pending_store: None,
            }),
        )?;
    }
    let report = engine.run()?;
    let edges_n = edges.edges.len() as u64;
    Ok(InsertResult {
        graph: g,
        edges: edges_n,
        edges_per_sec: if report.makespan == Time::ZERO {
            0.0
        } else {
            edges_n as f64 / report.makespan.secs_f64()
        },
        migrations: report.total_migrations(),
        makespan: report.makespan,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use emu_core::presets;

    #[test]
    fn simulated_insertion_matches_host_build() {
        let edges = gen::uniform(64, 300, 5);
        let cfg = presets::chick_prototype();
        let r = run_insert_emu(&cfg, &edges, 16, 4).unwrap();
        let host = Stinger::build_host(&edges, 4, 8);
        let sim = r.graph.lock().unwrap();
        assert_eq!(sim.canonical_adjacency(), host.canonical_adjacency());
        assert_eq!(sim.directed_edges(), host.directed_edges());
    }

    #[test]
    fn insertion_is_migration_heavy() {
        let edges = gen::uniform(128, 400, 6);
        let cfg = presets::chick_prototype();
        let r = run_insert_emu(&cfg, &edges, 32, 8).unwrap();
        // Roughly one migration per directed leg (minus same-home hits).
        assert!(
            r.migrations as f64 > 1.2 * edges.len() as f64,
            "migrations {} for {} edges",
            r.migrations,
            edges.len()
        );
        assert!(r.edges_per_sec > 0.0);
    }

    #[test]
    fn more_threads_insert_faster() {
        let edges = gen::uniform(256, 800, 7);
        let cfg = presets::chick_prototype();
        let t1 = run_insert_emu(&cfg, &edges, 1, 8).unwrap().makespan;
        let t32 = run_insert_emu(&cfg, &edges, 32, 8).unwrap().makespan;
        assert!(t32 < t1 / 4, "1thr {t1} vs 32thr {t32}");
    }

    #[test]
    fn deterministic() {
        let edges = gen::rmat(6, 200, 8);
        let cfg = presets::chick_prototype();
        let a = run_insert_emu(&cfg, &edges, 8, 4).unwrap();
        let b = run_insert_emu(&cfg, &edges, 8, 4).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.migrations, b.migrations);
    }
}
