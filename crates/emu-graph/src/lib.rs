//! # emu-graph — streaming graphs on the Emu model
//!
//! The paper's introduction motivates the Emu with streaming graph
//! analytics and names a STINGER port as the authors' larger goal. This
//! crate is that direction, built on the [`emu_core`] machine model:
//!
//! * [`stinger`] — a STINGER-style structure (per-vertex linked edge
//!   blocks, vertex-home placement) with functional queries and a host
//!   BFS reference;
//! * [`insert`] — streaming edge insertion as a simulated, verified,
//!   inherently migratory workload;
//! * [`bfs`] — level-synchronous BFS in naive (migrate-per-edge) and
//!   "smart migration" (remote-atomic discovery) variants, the graph
//!   analogue of the paper's 1D-vs-2D SpMV lesson;
//! * [`cc`] — connected components by label propagation, pull
//!   (migrating) vs push (posted remote updates) variants;
//! * [`gen`] — uniform, RMAT, path, and star generators.

#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod gen;
pub mod insert;
pub mod stinger;

pub use bfs::{run_bfs_emu, BfsMode, BfsResult};
pub use cc::{cc_reference, run_cc_emu, CcMode, CcResult};
pub use gen::EdgeList;
pub use insert::{run_insert_emu, InsertResult};
pub use stinger::{EdgeBlock, InsertOutcome, Stinger, DEFAULT_BLOCK_CAP};
