//! Connected components by label propagation on the Emu model.
//!
//! Each vertex starts with its own id as label; rounds propagate the
//! minimum label across edges until a fixed point. Like BFS, the kernel
//! comes in the naive flavour (reading a neighbor's label migrates) and
//! the smart flavour (labels pushed with remote atomic-min-style posted
//! updates, read locally next round) — and like every workload in this
//! workspace, it computes the real answer, verified against a host
//! union-find.

use crate::stinger::Stinger;
use desim::time::Time;
use emu_core::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Propagation strategy, mirroring [`crate::bfs::BfsMode`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CcMode {
    /// Pull: read each neighbor's label (migrates per edge).
    Pull,
    /// Push: send own label to neighbors with posted remote updates.
    Push,
}

impl CcMode {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CcMode::Pull => "pull",
            CcMode::Push => "push",
        }
    }
}

/// Result of a connected-components run.
#[derive(Debug)]
pub struct CcResult {
    /// Final label per vertex (the minimum vertex id of its component).
    pub labels: Vec<u32>,
    /// Number of components.
    pub components: usize,
    /// Propagation rounds until fixed point.
    pub rounds: u32,
    /// Total simulated time across rounds.
    pub total_time: Time,
    /// Total migrations.
    pub migrations: u64,
}

/// Host-reference components via union-find (labels = min id per
/// component, matching label propagation's fixed point).
pub fn cc_reference(g: &Stinger) -> Vec<u32> {
    let nv = g.nv() as usize;
    let mut parent: Vec<u32> = (0..g.nv()).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for u in 0..g.nv() {
        for v in g.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                // Union by min id keeps labels canonical.
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
    }
    let mut labels = vec![0u32; nv];
    for v in 0..g.nv() {
        labels[v as usize] = find(&mut parent, v);
    }
    labels
}

struct RoundState {
    g: Arc<Stinger>,
    labels: Mutex<Vec<u32>>,
    changed: AtomicU64,
}

/// One propagation worker over a strided slice of active vertices.
struct CcWorker {
    st: Arc<RoundState>,
    active: Arc<Vec<u32>>,
    idx: usize,
    step: usize,
    mode: CcMode,
    bi: usize,
    ni: usize,
    phase: u8,
}

fn label_addr(g: &Stinger, v: u32) -> GlobalAddr {
    GlobalAddr::new(g.home(v), 0x5000_0000 + (v as u64 / 8) * 8)
}

impl Kernel for CcWorker {
    fn step(&mut self, _ctx: &KernelCtx) -> Op {
        loop {
            if self.idx >= self.active.len() {
                return Op::Quit;
            }
            let u = self.active[self.idx];
            let g = &self.st.g;
            match self.phase {
                // Read own label + vertex record (local at u's home).
                0 => {
                    self.phase = 1;
                    self.bi = 0;
                    self.ni = 0;
                    return Op::Load {
                        addr: g.vertex_addr(u),
                        bytes: 16,
                    };
                }
                1 => {
                    if self.bi >= g.blocks(u).len() {
                        self.idx += self.step;
                        self.phase = 0;
                        continue;
                    }
                    self.phase = 2;
                    return Op::Load {
                        addr: g.blocks(u)[self.bi].addr,
                        bytes: 16,
                    };
                }
                2 => {
                    let block = &g.blocks(u)[self.bi];
                    if self.ni >= block.neighbors.len() {
                        self.bi += 1;
                        self.ni = 0;
                        self.phase = 1;
                        continue;
                    }
                    let v = block.neighbors[self.ni];
                    self.ni += 1;
                    // Functional min-propagation both directions (the
                    // undirected edge relaxes whichever side is larger).
                    {
                        let mut labels = self.st.labels.lock().unwrap();
                        let (lu, lv) = (labels[u as usize], labels[v as usize]);
                        let m = lu.min(lv);
                        if lu != m {
                            labels[u as usize] = m;
                            self.st.changed.fetch_add(1, Ordering::Relaxed);
                        }
                        if lv != m {
                            labels[v as usize] = m;
                            self.st.changed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    self.phase = 3;
                    return match self.mode {
                        // Pull: read the neighbor's label where it lives.
                        CcMode::Pull => Op::Load {
                            addr: label_addr(g, v),
                            bytes: 8,
                        },
                        // Push: post our label to the neighbor's home.
                        CcMode::Push => Op::AtomicAdd {
                            addr: label_addr(g, v),
                            bytes: 8,
                        },
                    };
                }
                3 => {
                    self.phase = 2;
                    return Op::Compute { cycles: 5 };
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Run label-propagation connected components.
pub fn run_cc_emu(
    cfg: &MachineConfig,
    g: Arc<Stinger>,
    mode: CcMode,
    nthreads: usize,
) -> Result<CcResult, SimError> {
    assert!(nthreads > 0);
    let nv = g.nv();
    let mut labels: Vec<u32> = (0..nv).collect();
    let mut total_time = Time::ZERO;
    let mut migrations = 0u64;
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        let st = Arc::new(RoundState {
            g: Arc::clone(&g),
            labels: Mutex::new(std::mem::take(&mut labels)),
            changed: AtomicU64::new(0),
        });
        let active: Arc<Vec<u32>> = Arc::new((0..nv).collect());
        let mut engine = Engine::new(cfg.clone())?;
        let workers = nthreads.min(nv as usize);
        for t in 0..workers {
            engine.spawn_at(
                g.home(active[t]),
                Box::new(CcWorker {
                    st: Arc::clone(&st),
                    active: Arc::clone(&active),
                    idx: t,
                    step: workers,
                    mode,
                    bi: 0,
                    ni: 0,
                    phase: 0,
                }),
            )?;
        }
        let report = engine.run()?;
        total_time += report.makespan;
        migrations += report.total_migrations();
        let changed = st.changed.load(Ordering::Relaxed);
        let st = Arc::try_unwrap(st).unwrap_or_else(|_| panic!("round state shared"));
        labels = st.labels.into_inner().unwrap();
        if changed == 0 {
            break;
        }
        assert!(rounds < nv + 2, "label propagation failed to converge");
    }
    let mut distinct: Vec<u32> = labels.clone();
    distinct.sort_unstable();
    distinct.dedup();
    Ok(CcResult {
        components: distinct.len(),
        labels,
        rounds,
        total_time,
        migrations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use emu_core::presets;

    fn check(edges: &crate::gen::EdgeList, mode: CcMode) -> CcResult {
        let g = Arc::new(Stinger::build_host(edges, 4, 8));
        let reference = cc_reference(&g);
        let r = run_cc_emu(&presets::chick_prototype(), Arc::clone(&g), mode, 16).unwrap();
        assert_eq!(r.labels, reference, "{} labels diverged", mode.name());
        r
    }

    #[test]
    fn single_component_path() {
        for mode in [CcMode::Pull, CcMode::Push] {
            let r = check(&gen::path(12), mode);
            assert_eq!(r.components, 1);
            assert!(r.labels.iter().all(|&l| l == 0));
        }
    }

    #[test]
    fn disjoint_components_counted() {
        // Two cliques {0..4} and {5..9}, plus isolated vertices 10, 11.
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in a + 1..5 {
                edges.push((a, b));
            }
        }
        for a in 5..10u32 {
            for b in a + 1..10 {
                edges.push((a, b));
            }
        }
        let el = crate::gen::EdgeList { nv: 12, edges };
        for mode in [CcMode::Pull, CcMode::Push] {
            let r = check(&el, mode);
            assert_eq!(r.components, 4); // two cliques + two isolated
            assert_eq!(r.labels[7], 5);
            assert_eq!(r.labels[10], 10);
        }
    }

    #[test]
    fn random_graph_matches_union_find() {
        for seed in [1u64, 2] {
            let edges = gen::uniform(60, 90, seed);
            check(&edges, CcMode::Pull);
            check(&edges, CcMode::Push);
        }
    }

    #[test]
    fn push_mode_migrates_less() {
        let edges = gen::uniform(96, 500, 3);
        let pull = check(&edges, CcMode::Pull);
        let push = check(&edges, CcMode::Push);
        assert!(
            pull.migrations > 3 * push.migrations.max(1),
            "pull {} vs push {}",
            pull.migrations,
            push.migrations
        );
        assert_eq!(pull.components, push.components);
    }
}
