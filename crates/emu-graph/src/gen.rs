//! Synthetic graph generators for the streaming-graph benchmarks.

use desim::rng::rng_from_seed;

/// An undirected edge list over vertices `0..nv` (no self-loops;
/// duplicates possible, as in a real edge stream).
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Number of vertices.
    pub nv: u32,
    /// Edges as (u, v) pairs, u != v.
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Number of edges in the stream.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Uniform random graph: `ne` edges drawn uniformly (Erdős–Rényi-ish).
pub fn uniform(nv: u32, ne: usize, seed: u64) -> EdgeList {
    assert!(nv >= 2, "need at least two vertices");
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(ne);
    while edges.len() < ne {
        let u = rng.gen_range(0..nv);
        let v = rng.gen_range(0..nv);
        if u != v {
            edges.push((u, v));
        }
    }
    EdgeList { nv, edges }
}

/// RMAT-style skewed generator (a=0.57, b=c=0.19, d=0.05): the degree
/// skew typical of the "streaming graph analytics" workloads motivating
/// the paper.
pub fn rmat(scale: u32, ne: usize, seed: u64) -> EdgeList {
    assert!((1..31).contains(&scale), "scale out of range");
    let nv = 1u32 << scale;
    let mut rng = rng_from_seed(seed);
    let mut edges = Vec::with_capacity(ne);
    while edges.len() < ne {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.gen_f64();
            if r < 0.57 {
                // quadrant a: (0,0)
            } else if r < 0.76 {
                v |= 1;
            } else if r < 0.95 {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            edges.push((u, v));
        }
    }
    EdgeList { nv, edges }
}

/// A path graph 0-1-2-…-(nv-1): handy for exact BFS-level tests.
pub fn path(nv: u32) -> EdgeList {
    EdgeList {
        nv,
        edges: (0..nv - 1).map(|i| (i, i + 1)).collect(),
    }
}

/// A star centered at vertex 0: maximal degree skew.
pub fn star(nv: u32) -> EdgeList {
    EdgeList {
        nv,
        edges: (1..nv).map(|i| (0, i)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_bounds() {
        let g = uniform(100, 500, 1);
        assert_eq!(g.len(), 500);
        assert!(g.edges.iter().all(|&(u, v)| u < 100 && v < 100 && u != v));
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(8, 2000, 2);
        let mut deg = vec![0u32; 256];
        for &(u, v) in &g.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<u32>() / 256;
        assert!(max > 4 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn generators_deterministic() {
        assert_eq!(uniform(50, 100, 7).edges, uniform(50, 100, 7).edges);
        assert_eq!(rmat(6, 100, 7).edges, rmat(6, 100, 7).edges);
    }

    #[test]
    fn path_and_star_shapes() {
        assert_eq!(path(5).edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(star(4).edges, vec![(0, 1), (0, 2), (0, 3)]);
    }
}
