//! A STINGER-inspired streaming-graph structure mapped onto the Emu
//! address space.
//!
//! STINGER (Ediger et al., HPEC 2012 — the paper's reference \[3\]) keeps
//! each vertex's adjacency as a linked list of fixed-capacity *edge
//! blocks*, so edge insertions are cheap and traversals see exactly the
//! fragmented, fine-grained access pattern the paper's pointer-chase
//! benchmark distills. Here each vertex's record and all of its edge
//! blocks live on the vertex's *home nodelet* (`v % nodelets` — the same
//! dealing as the SpMV 2D layout), which is the placement a migratory
//! machine wants: a thread visits a vertex once and then reads its whole
//! adjacency locally.

use emu_core::prelude::*;

/// Capacity of one edge block (neighbors per block). Real STINGER uses
/// tens; small blocks stress the pointer-chasing behaviour.
pub const DEFAULT_BLOCK_CAP: usize = 14;

/// One fixed-capacity edge block.
#[derive(Debug, Clone)]
pub struct EdgeBlock {
    /// Neighbor vertex ids stored in this block.
    pub neighbors: Vec<u32>,
    /// Where this block lives (always the owning vertex's home nodelet).
    pub addr: GlobalAddr,
}

/// The streaming-graph structure: functional adjacency plus the address
/// map the simulated kernels charge against.
#[derive(Debug)]
pub struct Stinger {
    nv: u32,
    block_cap: usize,
    nodelets: u32,
    adj: Vec<Vec<EdgeBlock>>,
    next_offset: Vec<u64>,
    edges: u64,
}

/// Outcome of a single directed insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Appended into an existing block with space.
    Appended,
    /// A fresh block had to be allocated.
    NewBlock,
    /// The neighbor was already present; nothing changed.
    Duplicate,
}

impl Stinger {
    /// An empty graph over `nv` vertices on a `nodelets`-wide machine.
    pub fn new(nv: u32, block_cap: usize, nodelets: u32) -> Self {
        assert!(block_cap > 0, "block_cap must be > 0");
        assert!(nodelets > 0, "nodelets must be > 0");
        Stinger {
            nv,
            block_cap,
            nodelets,
            adj: vec![Vec::new(); nv as usize],
            next_offset: vec![0x4000_0000; nodelets as usize],
            edges: 0,
        }
    }

    /// Number of vertices.
    pub fn nv(&self) -> u32 {
        self.nv
    }

    /// Edge-block capacity.
    pub fn block_cap(&self) -> usize {
        self.block_cap
    }

    /// Directed edge count (an undirected edge counts twice).
    pub fn directed_edges(&self) -> u64 {
        self.edges
    }

    /// The nodelet that owns vertex `v`'s record and edge blocks.
    pub fn home(&self, v: u32) -> NodeletId {
        NodeletId(v % self.nodelets)
    }

    /// Address of vertex `v`'s record (degree, block-list head).
    pub fn vertex_addr(&self, v: u32) -> GlobalAddr {
        GlobalAddr::new(self.home(v), 0x1000_0000 + (v / self.nodelets) as u64 * 32)
    }

    /// The edge blocks of vertex `v`.
    pub fn blocks(&self, v: u32) -> &[EdgeBlock] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].iter().map(|b| b.neighbors.len()).sum()
    }

    /// Iterate `v`'s neighbors (block order).
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.adj[v as usize]
            .iter()
            .flat_map(|b| b.neighbors.iter().copied())
    }

    /// Insert the directed edge `u -> v` (idempotent: duplicates are
    /// detected by scanning `u`'s blocks, as STINGER does).
    pub fn insert_directed(&mut self, u: u32, v: u32) -> InsertOutcome {
        assert!(u < self.nv && v < self.nv, "vertex out of range");
        let home = self.home(u);
        if self.adj[u as usize]
            .iter()
            .any(|b| b.neighbors.contains(&v))
        {
            return InsertOutcome::Duplicate;
        }
        self.edges += 1;
        if let Some(last) = self.adj[u as usize].last_mut() {
            if last.neighbors.len() < self.block_cap {
                last.neighbors.push(v);
                return InsertOutcome::Appended;
            }
        }
        let off = &mut self.next_offset[home.idx()];
        let addr = GlobalAddr::new(home, *off);
        *off += (self.block_cap as u64 * 8).max(64);
        self.adj[u as usize].push(EdgeBlock {
            neighbors: vec![v],
            addr,
        });
        InsertOutcome::NewBlock
    }

    /// Insert an undirected edge (both directions).
    pub fn insert_undirected(&mut self, u: u32, v: u32) -> (InsertOutcome, InsertOutcome) {
        (self.insert_directed(u, v), self.insert_directed(v, u))
    }

    /// Build from an undirected edge stream on the host (no simulation).
    pub fn build_host(edges: &crate::gen::EdgeList, block_cap: usize, nodelets: u32) -> Self {
        let mut g = Stinger::new(edges.nv, block_cap, nodelets);
        for &(u, v) in &edges.edges {
            g.insert_undirected(u, v);
        }
        g
    }

    /// Sorted adjacency lists, for comparing two structures that were
    /// built in different orders.
    pub fn canonical_adjacency(&self) -> Vec<Vec<u32>> {
        (0..self.nv)
            .map(|v| {
                let mut n: Vec<u32> = self.neighbors(v).collect();
                n.sort_unstable();
                n
            })
            .collect()
    }

    /// Host-side BFS levels from `src` (`u32::MAX` = unreachable) — the
    /// reference the simulated BFS kernels are verified against.
    pub fn bfs_reference(&self, src: u32) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.nv as usize];
        let mut frontier = vec![src];
        level[src as usize] = 0;
        let mut depth = 0;
        while !frontier.is_empty() {
            depth += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for v in self.neighbors(u) {
                    if level[v as usize] == u32::MAX {
                        level[v as usize] = depth;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn insert_and_degree() {
        let mut g = Stinger::new(10, 2, 8);
        assert_eq!(g.insert_directed(0, 1), InsertOutcome::NewBlock);
        assert_eq!(g.insert_directed(0, 2), InsertOutcome::Appended);
        assert_eq!(g.insert_directed(0, 3), InsertOutcome::NewBlock); // block full
        assert_eq!(g.insert_directed(0, 1), InsertOutcome::Duplicate);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.blocks(0).len(), 2);
        assert_eq!(g.directed_edges(), 3);
    }

    #[test]
    fn blocks_live_on_vertex_home() {
        let mut g = Stinger::new(20, 4, 8);
        g.insert_directed(13, 1);
        g.insert_directed(13, 2);
        assert_eq!(g.home(13), NodeletId(5));
        for b in g.blocks(13) {
            assert_eq!(b.addr.nodelet, NodeletId(5));
        }
        assert_eq!(g.vertex_addr(13).nodelet, NodeletId(5));
    }

    #[test]
    fn block_addresses_unique() {
        let mut g = Stinger::new(4, 1, 2);
        for v in [1u32, 2, 3] {
            g.insert_directed(0, v); // three blocks for vertex 0
        }
        let addrs: Vec<_> = g
            .blocks(0)
            .iter()
            .map(|b| (b.addr.nodelet, b.addr.offset))
            .collect();
        let mut dedup = addrs.clone();
        dedup.sort_unstable_by_key(|&(n, o)| (n.0, o));
        dedup.dedup();
        assert_eq!(addrs.len(), dedup.len());
    }

    #[test]
    fn bfs_reference_on_path() {
        let g = Stinger::build_host(&gen::path(6), 4, 8);
        assert_eq!(g.bfs_reference(0), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(g.bfs_reference(3), vec![3, 2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_reference_unreachable() {
        let mut g = Stinger::new(5, 4, 8);
        g.insert_undirected(0, 1);
        // vertices 2..4 isolated
        let lv = g.bfs_reference(0);
        assert_eq!(lv[1], 1);
        assert_eq!(lv[2], u32::MAX);
    }

    #[test]
    fn canonical_adjacency_order_independent() {
        let e1 = gen::uniform(30, 120, 3);
        let mut e2 = e1.clone();
        e2.edges.reverse();
        let a = Stinger::build_host(&e1, 4, 8).canonical_adjacency();
        let b = Stinger::build_host(&e2, 4, 8).canonical_adjacency();
        assert_eq!(a, b);
    }
}
