//! Property-based tests for the streaming-graph substrate.

use emu_core::presets;
use emu_graph::bfs::{run_bfs_emu, BfsMode};
use emu_graph::gen::{uniform, EdgeList};
use emu_graph::insert::run_insert_emu;
use emu_graph::stinger::Stinger;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_edges() -> impl Strategy<Value = EdgeList> {
    (2u32..50, 1usize..150, any::<u64>())
        .prop_map(|(nv, ne, seed)| uniform(nv, ne, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The structure holds exactly the distinct edges of the stream, no
    /// matter the insertion order or block capacity.
    #[test]
    fn stinger_holds_exactly_the_distinct_edges(
        edges in arb_edges(),
        block_cap in 1usize..10
    ) {
        let g = Stinger::build_host(&edges, block_cap, 8);
        // Expected: sorted deduped undirected adjacency.
        let mut expect: Vec<Vec<u32>> = vec![Vec::new(); edges.nv as usize];
        for &(u, v) in &edges.edges {
            expect[u as usize].push(v);
            expect[v as usize].push(u);
        }
        for l in &mut expect {
            l.sort_unstable();
            l.dedup();
        }
        prop_assert_eq!(g.canonical_adjacency(), expect);
    }

    /// Block capacity shapes the structure: every block except the last
    /// of each vertex is exactly full.
    #[test]
    fn blocks_pack_tightly(edges in arb_edges(), block_cap in 1usize..8) {
        let g = Stinger::build_host(&edges, block_cap, 8);
        for v in 0..g.nv() {
            let blocks = g.blocks(v);
            for b in blocks.iter().take(blocks.len().saturating_sub(1)) {
                prop_assert_eq!(b.neighbors.len(), block_cap);
            }
        }
    }

    /// Simulated streaming insertion produces the same structure as the
    /// host build, for any thread count.
    #[test]
    fn simulated_insert_equals_host(edges in arb_edges(), threads in 1usize..24) {
        let cfg = presets::chick_prototype();
        let r = run_insert_emu(&cfg, &edges, threads, 4);
        let host = Stinger::build_host(&edges, 4, 8);
        prop_assert_eq!(
            r.graph.lock().unwrap().canonical_adjacency(),
            host.canonical_adjacency()
        );
    }

    /// Both BFS modes compute exactly the reference levels on arbitrary
    /// graphs and sources.
    #[test]
    fn bfs_always_matches_reference(
        edges in arb_edges(),
        src_pick in any::<u32>(),
        threads in 1usize..16
    ) {
        let src = src_pick % edges.nv;
        let g = Arc::new(Stinger::build_host(&edges, 4, 8));
        let reference = g.bfs_reference(src);
        for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
            let r = run_bfs_emu(
                &presets::chick_prototype(),
                Arc::clone(&g),
                src,
                mode,
                threads,
            );
            prop_assert_eq!(&r.levels, &reference, "{}", mode.name());
        }
    }

    /// BFS level sets are symmetric in an undirected graph: adjacent
    /// vertices' levels differ by at most 1.
    #[test]
    fn bfs_levels_lipschitz(edges in arb_edges()) {
        let g = Arc::new(Stinger::build_host(&edges, 4, 8));
        let r = run_bfs_emu(
            &presets::chick_prototype(),
            Arc::clone(&g),
            0,
            BfsMode::RemoteFlags,
            8,
        );
        for &(u, v) in &edges.edges {
            let (lu, lv) = (r.levels[u as usize], r.levels[v as usize]);
            if lu != u32::MAX || lv != u32::MAX {
                prop_assert!(lu != u32::MAX && lv != u32::MAX, "one side unreachable");
                prop_assert!(lu.abs_diff(lv) <= 1, "({u},{v}): {lu} vs {lv}");
            }
        }
    }
}
