//! Randomized (seeded, deterministic) tests for the streaming-graph
//! substrate. Each test sweeps a fixed set of seeds so failures are
//! reproducible without any external property-testing framework.

use emu_core::presets;
use emu_graph::bfs::{run_bfs_emu, BfsMode};
use emu_graph::gen::{uniform, EdgeList};
use emu_graph::insert::run_insert_emu;
use emu_graph::stinger::Stinger;
use std::sync::Arc;
use test_support::{cases, Rng64};

const CASES: u64 = 32;

fn arb_edges(rng: &mut Rng64) -> EdgeList {
    let nv = rng.gen_range(2..50u32);
    let ne = rng.gen_range(1..150usize);
    let seed = rng.next_u64();
    uniform(nv, ne, seed)
}

/// The structure holds exactly the distinct edges of the stream, no
/// matter the insertion order or block capacity.
#[test]
fn stinger_holds_exactly_the_distinct_edges() {
    cases(CASES, 0x571, |_case, rng| {
        let edges = arb_edges(rng);
        let block_cap = rng.gen_range(1..10usize);
        let g = Stinger::build_host(&edges, block_cap, 8);
        // Expected: sorted deduped undirected adjacency.
        let mut expect: Vec<Vec<u32>> = vec![Vec::new(); edges.nv as usize];
        for &(u, v) in &edges.edges {
            expect[u as usize].push(v);
            expect[v as usize].push(u);
        }
        for l in &mut expect {
            l.sort_unstable();
            l.dedup();
        }
        assert_eq!(g.canonical_adjacency(), expect);
    });
}

/// Block capacity shapes the structure: every block except the last
/// of each vertex is exactly full.
#[test]
fn blocks_pack_tightly() {
    cases(CASES, 0xB10C, |_case, rng| {
        let edges = arb_edges(rng);
        let block_cap = rng.gen_range(1..8usize);
        let g = Stinger::build_host(&edges, block_cap, 8);
        for v in 0..g.nv() {
            let blocks = g.blocks(v);
            for b in blocks.iter().take(blocks.len().saturating_sub(1)) {
                assert_eq!(b.neighbors.len(), block_cap);
            }
        }
    });
}

/// Simulated streaming insertion produces the same structure as the
/// host build, for any thread count.
#[test]
fn simulated_insert_equals_host() {
    cases(CASES, 0x145E87, |_case, rng| {
        let edges = arb_edges(rng);
        let threads = rng.gen_range(1..24usize);
        let cfg = presets::chick_prototype();
        let r = run_insert_emu(&cfg, &edges, threads, 4).unwrap();
        let host = Stinger::build_host(&edges, 4, 8);
        assert_eq!(
            r.graph.lock().unwrap().canonical_adjacency(),
            host.canonical_adjacency()
        );
    });
}

/// Both BFS modes compute exactly the reference levels on arbitrary
/// graphs and sources.
#[test]
fn bfs_always_matches_reference() {
    cases(CASES, 0xBF5, |_case, rng| {
        let edges = arb_edges(rng);
        let src = rng.gen_range(0..edges.nv);
        let threads = rng.gen_range(1..16usize);
        let g = Arc::new(Stinger::build_host(&edges, 4, 8));
        let reference = g.bfs_reference(src);
        for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
            let r = run_bfs_emu(
                &presets::chick_prototype(),
                Arc::clone(&g),
                src,
                mode,
                threads,
            )
            .unwrap();
            assert_eq!(&r.levels, &reference, "{}", mode.name());
        }
    });
}

/// BFS level sets are symmetric in an undirected graph: adjacent
/// vertices' levels differ by at most 1.
#[test]
fn bfs_levels_lipschitz() {
    cases(CASES, 0x11B5, |_case, rng| {
        let edges = arb_edges(rng);
        let g = Arc::new(Stinger::build_host(&edges, 4, 8));
        let r = run_bfs_emu(
            &presets::chick_prototype(),
            Arc::clone(&g),
            0,
            BfsMode::RemoteFlags,
            8,
        )
        .unwrap();
        for &(u, v) in &edges.edges {
            let (lu, lv) = (r.levels[u as usize], r.levels[v as usize]);
            if lu != u32::MAX || lv != u32::MAX {
                assert!(lu != u32::MAX && lv != u32::MAX, "one side unreachable");
                assert!(lu.abs_diff(lv) <= 1, "({u},{v}): {lu} vs {lv}");
            }
        }
    });
}
