//! Fault-path accounting for the streaming-graph workloads: BFS under
//! an active [`FaultPlan`] must stay functionally exact, and every
//! fault-recovery counter must reconcile with the event trace — checked
//! both explicitly ([`RunReport::fault_totals`] vs trace counts) and by
//! the full [`emu_core::audit`] pass.

use emu_core::prelude::*;
use emu_core::trace::{self, GlobalTelemetryGuard, TelemetryConfig};
use emu_graph::bfs::{run_bfs_emu, BfsMode};
use emu_graph::gen::uniform;
use emu_graph::stinger::Stinger;
use std::sync::Arc;

fn faulty_cfg() -> MachineConfig {
    let mut cfg = presets::chick_prototype();
    cfg.faults = FaultPlan {
        seed: 0xFA017,
        mig_nack_prob: 0.2,
        mig_backoff: desim::time::Time::from_ns(50),
        mig_retry_budget: 64,
        ecc_prob: 0.15,
        ecc_latency: desim::time::Time::from_ns(80),
        ..FaultPlan::none()
    };
    cfg.faults.validate(cfg.total_nodelets()).unwrap();
    cfg
}

/// Collect every engine report of `f` with lossless tracing enabled.
fn traced_reports(f: impl FnOnce()) -> Vec<RunReport> {
    let guard = GlobalTelemetryGuard::arm(TelemetryConfig {
        event_capacity: 1 << 20,
        timeline_bucket: None,
    });
    trace::collect_reports(true);
    f();
    drop(guard);
    let reports = trace::take_reports();
    trace::collect_reports(false);
    reports
}

#[test]
fn bfs_fault_counters_reconcile_with_trace() {
    let cfg = faulty_cfg();
    let edges = uniform(64, 256, 0xB15);
    let g = Arc::new(Stinger::build_host(&edges, 4, cfg.total_nodelets()));
    let reference = g.bfs_reference(0);

    for mode in [BfsMode::Migrating, BfsMode::RemoteFlags] {
        let g = Arc::clone(&g);
        let cfg2 = cfg.clone();
        let mut levels = Vec::new();
        let reports = traced_reports(|| {
            levels = run_bfs_emu(&cfg2, g, 0, mode, 16).unwrap().levels;
        });
        // Faults perturb timing, never results.
        assert_eq!(levels, reference, "{}", mode.name());

        assert!(!reports.is_empty(), "no reports collected");
        let mut nacks = 0;
        for r in &reports {
            let log = r.trace.as_ref().expect("tracing was armed");
            assert!(log.is_lossless(), "ring too small for reconciliation");
            let totals = r.fault_totals();
            assert_eq!(totals.nacks, log.count_of(TraceKind::MigNack));
            assert_eq!(totals.retries, log.count_of(TraceKind::MigRetry));
            assert_eq!(totals.ecc_retries, log.count_of(TraceKind::EccRetry));
            assert_eq!(
                totals.link_retransmits,
                log.count_of(TraceKind::LinkRetransmit)
            );
            assert_eq!(totals.redirects, log.count_of(TraceKind::Redirect));
            // Completed runs retry every NACK.
            assert_eq!(totals.nacks, totals.retries);
            assert_consistent(&cfg, r);
            nacks += totals.nacks;
        }
        // The plan injects aggressively; a migrating BFS that never saw
        // a single NACK means the fault path did not execute.
        if mode == BfsMode::Migrating {
            assert!(nacks > 0, "fault plan injected nothing");
        }
    }
}

#[test]
fn bfs_fault_runs_are_reproducible() {
    let cfg = faulty_cfg();
    let edges = uniform(48, 160, 0xB16);
    let g = Arc::new(Stinger::build_host(&edges, 4, cfg.total_nodelets()));
    let run = || {
        let r = run_bfs_emu(&cfg, Arc::clone(&g), 0, BfsMode::Migrating, 12).unwrap();
        (r.levels, r.total_time, r.migrations)
    };
    assert_eq!(run(), run(), "seeded faults must replay exactly");
}
