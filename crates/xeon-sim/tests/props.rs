//! Property-based tests of the CPU model's invariants.

use proptest::prelude::*;
use xeon_sim::cache::Cache;
use xeon_sim::config::{sandy_bridge, CacheGeometry};
use xeon_sim::prelude::*;

fn tiny_geom(assoc: u32, sets: u32) -> CacheGeometry {
    CacheGeometry {
        capacity: (assoc * sets * 64) as u64,
        assoc,
        line_bytes: 64,
        latency_cycles: 1,
    }
}

proptest! {
    /// A cache never holds more distinct lines than its capacity, and a
    /// line just installed is always present.
    #[test]
    fn cache_capacity_bound(
        assoc in 1u32..8,
        sets in 1u32..16,
        addrs in prop::collection::vec(0u64..1_000_000, 1..400)
    ) {
        let geom = tiny_geom(assoc, sets);
        let mut c = Cache::new(geom);
        for &a in &addrs {
            c.access(a, false);
            prop_assert!(c.contains(a), "just-installed line missing");
        }
        // Count resident lines by probing all distinct lines we touched.
        let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 64 * 64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let resident = distinct.iter().filter(|&&l| c.contains(l)).count();
        prop_assert!(resident as u64 <= geom.sets() * assoc as u64);
    }

    /// hits + misses equals the number of accesses, always.
    #[test]
    fn cache_stats_partition(addrs in prop::collection::vec(0u64..100_000, 1..300)) {
        let mut c = Cache::new(tiny_geom(4, 8));
        for &a in &addrs {
            c.access(a, a % 3 == 0);
        }
        let (h, m) = c.stats();
        prop_assert_eq!(h + m, addrs.len() as u64);
    }

    /// Within one set, an access pattern that fits the associativity
    /// never misses after the warmup pass (LRU stack property).
    #[test]
    fn cache_lru_stack_property(assoc in 2u32..8, rounds in 2usize..6) {
        let geom = tiny_geom(assoc, 4);
        let mut c = Cache::new(geom);
        // `assoc` distinct lines in set 0 (stride = sets*64).
        let lines: Vec<u64> = (0..assoc as u64).map(|i| i * 4 * 64).collect();
        for round in 0..rounds {
            for &l in &lines {
                let hit = c.probe(l, false);
                if !hit {
                    c.install(l, false);
                    prop_assert_eq!(round, 0, "miss after warmup");
                }
            }
        }
    }

    /// DRAM request completion is monotone when arrivals are monotone,
    /// and row stats partition the accesses.
    #[test]
    fn dram_monotone(reqs in prop::collection::vec((0u64..1u64<<24, any::<bool>()), 1..200)) {
        use desim::time::Time;
        let mut d = xeon_sim::dram::Dram::new(sandy_bridge().dram, 64);
        let mut at = Time::ZERO;
        for (i, &(addr, w)) in reqs.iter().enumerate() {
            let addr = addr / 64 * 64;
            let done = d.request(at, addr, w);
            prop_assert!(done > at);
            at += Time::from_ns((i % 7) as u64);
        }
        let s = d.stats();
        prop_assert_eq!(s.reads + s.writes, reqs.len() as u64);
        prop_assert_eq!(s.row_hits + s.row_misses, reqs.len() as u64);
        let r = s.row_hit_rate();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// The engine terminates for arbitrary single-thread programs and
    /// counts every load at exactly one level.
    #[test]
    fn cpu_engine_levels_partition(
        ops in prop::collection::vec((0u64..1u64<<20, 0u8..3), 1..200)
    ) {
        let mut e = CpuEngine::new(sandy_bridge());
        let script: Vec<CpuOp> = ops
            .iter()
            .map(|&(addr, kind)| {
                let addr = addr / 8 * 8; // aligned, never line-crossing
                match kind {
                    0 => CpuOp::Load { addr, bytes: 8 },
                    1 => CpuOp::Store { addr, bytes: 8 },
                    _ => CpuOp::Compute { cycles: 3 },
                }
            })
            .collect();
        let loads = ops.iter().filter(|&&(_, k)| k == 0).count() as u64;
        e.add_thread(Box::new(CpuScript::new(script)));
        let r = e.run();
        let c = &r.counters;
        prop_assert_eq!(
            c.l1_hits + c.l2_hits + c.l3_hits + c.prefetch_hits + c.dram_loads,
            loads
        );
    }

    /// Determinism of the CPU engine under arbitrary multi-thread loads.
    #[test]
    fn cpu_engine_deterministic(
        seqs in prop::collection::vec(
            prop::collection::vec(0u64..1u64<<18, 1..50), 1..4)
    ) {
        let run = || {
            let mut e = CpuEngine::new(sandy_bridge());
            for s in &seqs {
                let script: Vec<CpuOp> = s
                    .iter()
                    .map(|&a| CpuOp::Load { addr: a / 8 * 8, bytes: 8 })
                    .collect();
                e.add_thread(Box::new(CpuScript::new(script)));
            }
            e.run().makespan
        };
        prop_assert_eq!(run(), run());
    }
}
