//! Randomized (seeded, deterministic) tests of the CPU model's
//! invariants. Each test sweeps a fixed set of seeds so failures are
//! reproducible without any external property-testing framework.

use test_support::cases;
use xeon_sim::cache::Cache;
use xeon_sim::config::{sandy_bridge, CacheGeometry};
use xeon_sim::prelude::*;

const CASES: u64 = 64;

fn tiny_geom(assoc: u32, sets: u32) -> CacheGeometry {
    CacheGeometry {
        capacity: (assoc * sets * 64) as u64,
        assoc,
        line_bytes: 64,
        latency_cycles: 1,
    }
}

/// A cache never holds more distinct lines than its capacity, and a
/// line just installed is always present.
#[test]
fn cache_capacity_bound() {
    cases(CASES, 0xCAB, |_case, rng| {
        let assoc = rng.gen_range(1..8u32);
        let sets = rng.gen_range(1..16u32);
        let len = rng.gen_range(1..400usize);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..1_000_000u64)).collect();
        let geom = tiny_geom(assoc, sets);
        let mut c = Cache::new(geom);
        for &a in &addrs {
            c.access(a, false);
            assert!(c.contains(a), "just-installed line missing");
        }
        // Count resident lines by probing all distinct lines we touched.
        let mut distinct: Vec<u64> = addrs.iter().map(|a| a / 64 * 64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        let resident = distinct.iter().filter(|&&l| c.contains(l)).count();
        assert!(resident as u64 <= geom.sets() * assoc as u64);
    });
}

/// hits + misses equals the number of accesses, always.
#[test]
fn cache_stats_partition() {
    cases(CASES, 0x57A7, |_case, rng| {
        let len = rng.gen_range(1..300usize);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range(0..100_000u64)).collect();
        let mut c = Cache::new(tiny_geom(4, 8));
        for &a in &addrs {
            c.access(a, a % 3 == 0);
        }
        let (h, m) = c.stats();
        assert_eq!(h + m, addrs.len() as u64);
    });
}

/// Within one set, an access pattern that fits the associativity
/// never misses after the warmup pass (LRU stack property).
#[test]
fn cache_lru_stack_property() {
    for assoc in 2u32..8 {
        for rounds in 2usize..6 {
            let geom = tiny_geom(assoc, 4);
            let mut c = Cache::new(geom);
            // `assoc` distinct lines in set 0 (stride = sets*64).
            let lines: Vec<u64> = (0..assoc as u64).map(|i| i * 4 * 64).collect();
            for round in 0..rounds {
                for &l in &lines {
                    let hit = c.probe(l, false);
                    if !hit {
                        c.install(l, false);
                        assert_eq!(round, 0, "miss after warmup");
                    }
                }
            }
        }
    }
}

/// DRAM request completion is monotone when arrivals are monotone,
/// and row stats partition the accesses.
#[test]
fn dram_monotone() {
    use desim::time::Time;
    cases(CASES, 0xD7A8, |_case, rng| {
        let len = rng.gen_range(1..200usize);
        let reqs: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.gen_range(0..1u64 << 24), rng.next_u64() & 1 == 0))
            .collect();
        let mut d = xeon_sim::dram::Dram::new(sandy_bridge().dram, 64);
        let mut at = Time::ZERO;
        for (i, &(addr, w)) in reqs.iter().enumerate() {
            let addr = addr / 64 * 64;
            let done = d.request(at, addr, w);
            assert!(done > at);
            at += Time::from_ns((i % 7) as u64);
        }
        let s = d.stats();
        assert_eq!(s.reads + s.writes, reqs.len() as u64);
        assert_eq!(s.row_hits + s.row_misses, reqs.len() as u64);
        let r = s.row_hit_rate();
        assert!((0.0..=1.0).contains(&r));
    });
}

/// The engine terminates for arbitrary single-thread programs and
/// counts every load at exactly one level.
#[test]
fn cpu_engine_levels_partition() {
    cases(CASES, 0x1E7E15, |_case, rng| {
        let len = rng.gen_range(1..200usize);
        let ops: Vec<(u64, u8)> = (0..len)
            .map(|_| (rng.gen_range(0..1u64 << 20), rng.gen_range(0..3u32) as u8))
            .collect();
        let mut e = CpuEngine::new(sandy_bridge());
        let script: Vec<CpuOp> = ops
            .iter()
            .map(|&(addr, kind)| {
                let addr = addr / 8 * 8; // aligned, never line-crossing
                match kind {
                    0 => CpuOp::Load { addr, bytes: 8 },
                    1 => CpuOp::Store { addr, bytes: 8 },
                    _ => CpuOp::Compute { cycles: 3 },
                }
            })
            .collect();
        let loads = ops.iter().filter(|&&(_, k)| k == 0).count() as u64;
        e.add_thread(Box::new(CpuScript::new(script)));
        let r = e.run();
        let c = &r.counters;
        assert_eq!(
            c.l1_hits + c.l2_hits + c.l3_hits + c.prefetch_hits + c.dram_loads,
            loads
        );
    });
}

/// Determinism of the CPU engine under arbitrary multi-thread loads.
#[test]
fn cpu_engine_deterministic() {
    cases(16, 0xDE7C, |_case, rng| {
        let nthreads = rng.gen_range(1..4usize);
        let seqs: Vec<Vec<u64>> = (0..nthreads)
            .map(|_| {
                let len = rng.gen_range(1..50usize);
                (0..len).map(|_| rng.gen_range(0..1u64 << 18)).collect()
            })
            .collect();
        let run = || {
            let mut e = CpuEngine::new(sandy_bridge());
            for s in &seqs {
                let script: Vec<CpuOp> = s
                    .iter()
                    .map(|&a| CpuOp::Load {
                        addr: a / 8 * 8,
                        bytes: 8,
                    })
                    .collect();
                e.add_thread(Box::new(CpuScript::new(script)));
            }
            e.run().makespan
        };
        assert_eq!(run(), run());
    });
}
