//! Functional set-associative cache with true-LRU replacement.
//!
//! Tags only — the simulators never hold data. The pointer-chasing
//! comparison depends on *real* capacity/conflict behaviour (blocks that
//! fit in a level get their lines reused; bigger blocks thrash), so the
//! tag arrays are simulated exactly rather than approximated.

use crate::config::CacheGeometry;

/// Result of a cache lookup+fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; it was installed, evicting nothing.
    Miss,
    /// Line absent; installing it evicted a clean line.
    MissEvictClean,
    /// Line absent; installing it evicted a dirty line (writeback needed).
    MissEvictDirty {
        /// The evicted line's address (line-aligned).
        line: u64,
    },
}

impl Access {
    /// Whether the lookup hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

#[derive(Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch (true LRU).
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache level.
pub struct Cache {
    ways: Vec<Way>, // sets x assoc, row-major by set
    assoc: usize,
    sets: u64,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache with `geom`etry.
    ///
    /// # Panics
    /// Panics if the geometry has zero sets or a non-power-of-two line
    /// size. Non-power-of-two set counts are fine (indexed by modulo), as
    /// real LLCs like Sandy Bridge's 20 MiB slice-hashed L3 have them.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            geom.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            ways: vec![Way::default(); (sets * geom.assoc as u64) as usize],
            assoc: geom.assoc as usize,
            sets,
            line_shift: geom.line_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The line-aligned address containing `addr`.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = ((line >> self.line_shift) % self.sets) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Probe without filling: true if the line holding `addr` is present
    /// (touches LRU, sets dirty on writes).
    pub fn probe(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line >> self.line_shift;
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                w.dirty |= write;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Look up `addr`; on miss, install its line (LRU victim). Returns
    /// what happened, including any dirty eviction.
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        if self.probe(addr, write) {
            return Access::Hit;
        }
        self.install(addr, write)
    }

    /// Install the line holding `addr` (no hit check — caller knows it
    /// missed). Returns the miss flavour.
    pub fn install(&mut self, addr: u64, dirty: bool) -> Access {
        self.tick += 1;
        let line = self.line_of(addr);
        let tag = line >> self.line_shift;
        let line_shift = self.line_shift;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.ways[range];
        // Prefer an invalid way; otherwise evict true-LRU.
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| (w.valid, w.lru))
            .map(|(i, _)| i)
            .expect("nonzero associativity");
        let w = &mut set[victim];
        let result = if !w.valid {
            Access::Miss
        } else if w.dirty {
            Access::MissEvictDirty {
                line: w.tag << line_shift,
            }
        } else {
            Access::MissEvictClean
        };
        *w = Way {
            tag,
            valid: true,
            dirty,
            lru: tick,
        };
        result
    }

    /// Whether the line holding `addr` is present (no LRU side effects).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let tag = line >> self.line_shift;
        let range = self.set_range(line);
        self.ways[range].iter().any(|w| w.valid && w.tag == tag)
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheGeometry;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B.
        Cache::new(CacheGeometry {
            capacity: 256,
            assoc: 2,
            line_bytes: 64,
            latency_cycles: 1,
        })
    }

    #[test]
    fn hit_after_install() {
        let mut c = tiny();
        assert!(!c.probe(0x100, false));
        c.install(0x100, false);
        assert!(c.probe(0x100, false));
        assert!(c.probe(0x13f, false), "same line, different offset");
        assert!(!c.probe(0x140, false), "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line_addr >> 6) even.
        c.install(0x000, false);
        c.install(0x080, false); // same set (2 sets: set = bit 6.. wait)
                                 // set index = (addr>>6) & 1, so 0x000 -> set 0, 0x080 -> set 0? 0x80>>6 = 2 -> set 0.
        assert!(c.contains(0x000) && c.contains(0x080));
        c.probe(0x000, false); // touch 0x000, making 0x080 LRU
        c.install(0x100, false); // set 0 again (0x100>>6 = 4)
        assert!(c.contains(0x000), "recently touched survives");
        assert!(!c.contains(0x080), "LRU way evicted");
    }

    #[test]
    fn dirty_eviction_reports_line() {
        let mut c = tiny();
        c.install(0x000, true); // dirty
        c.install(0x080, false);
        // Next install in set 0 must evict dirty 0x000.
        match c.install(0x100, false) {
            Access::MissEvictDirty { line } => assert_eq!(line, 0x000),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_probe_sets_dirty() {
        let mut c = tiny();
        c.install(0x000, false);
        assert!(c.probe(0x000, true)); // write hit dirties the line
        c.install(0x080, false);
        match c.install(0x100, false) {
            Access::MissEvictDirty { line } => assert_eq!(line, 0x000),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn capacity_behaviour() {
        // A working set equal to capacity hits; 2x capacity thrashes.
        let geom = CacheGeometry {
            capacity: 4096,
            assoc: 4,
            line_bytes: 64,
            latency_cycles: 1,
        };
        let mut c = Cache::new(geom);
        let lines_in_cache = 4096 / 64;
        for pass in 0..3 {
            for i in 0..lines_in_cache {
                let r = c.access(i * 64, false);
                if pass > 0 {
                    assert!(r.is_hit(), "pass {pass} line {i}");
                }
            }
        }
        // Double working set with sequential sweep: LRU thrashes to 0%.
        let mut c = Cache::new(geom);
        for _ in 0..3 {
            for i in 0..2 * lines_in_cache {
                c.access(i * 64, false);
            }
        }
        let (h, m) = c.stats();
        assert_eq!(h, 0, "sequential over-capacity sweep never hits ({h}/{m})");
    }

    #[test]
    fn stats_count() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 2));
    }
}
