//! Configuration of the cache-based comparison platform.

use desim::time::{Clock, Time};

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (64 on every modeled machine).
    pub line_bytes: u32,
    /// Load-to-use latency in core cycles.
    pub latency_cycles: u32,
}

impl CacheGeometry {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.assoc as u64 * self.line_bytes as u64)
    }
}

/// DRAM subsystem description (per system, shared by all cores).
#[derive(Clone, Copy, Debug)]
pub struct DramConfig {
    /// Independent channels.
    pub channels: u32,
    /// Banks per channel.
    pub banks_per_channel: u32,
    /// Bus bandwidth per channel, bytes/sec (64-bit DDR3-1600 = 12.8 GB/s).
    pub channel_bytes_per_sec: u64,
    /// Row-buffer (DRAM page) size in bytes (8 KiB on the paper's Xeons).
    pub row_bytes: u64,
    /// Column access latency (row already open).
    pub t_cas: Time,
    /// Row activate latency.
    pub t_rcd: Time,
    /// Precharge latency (closing the previously open row).
    pub t_rp: Time,
    /// Fixed controller/queueing overhead per access.
    pub t_controller: Time,
}

impl DramConfig {
    /// Peak theoretical bandwidth of the whole memory system, bytes/sec.
    pub fn peak_bytes_per_sec(&self) -> u64 {
        self.channels as u64 * self.channel_bytes_per_sec
    }
}

/// Hardware stream-prefetcher parameters.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchConfig {
    /// Whether the prefetcher is enabled at all.
    pub enabled: bool,
    /// Consecutive-line misses needed to confirm a stream.
    pub trigger_streak: u32,
    /// Lines fetched ahead once a stream is confirmed.
    pub degree: u32,
}

/// A multicore, cache-based CPU (the paper's Sandy Bridge / Haswell
/// comparison platforms).
#[derive(Clone, Debug)]
pub struct CpuConfig {
    /// Human-readable platform name (appears in reports).
    pub name: &'static str,
    /// Physical cores.
    pub cores: u32,
    /// Hardware thread contexts (2x cores with HyperThreading).
    pub contexts: u32,
    /// Core clock.
    pub clock: Clock,
    /// Per-core L1 data cache.
    pub l1: CacheGeometry,
    /// Per-core L2.
    pub l2: CacheGeometry,
    /// Shared last-level cache.
    pub l3: CacheGeometry,
    /// Memory subsystem.
    pub dram: DramConfig,
    /// Stream prefetcher.
    pub prefetch: PrefetchConfig,
    /// Cycles a store that misses stalls the core (store-buffer pressure);
    /// store hits cost one cycle.
    pub store_miss_stall_cycles: u32,
}

impl CpuConfig {
    /// Duration of `n` core cycles.
    #[inline]
    pub fn cycles(&self, n: u32) -> Time {
        self.clock.cycles(n as u64)
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 || self.contexts < self.cores {
            return Err("cores must be > 0 and contexts >= cores".into());
        }
        for (name, g) in [("l1", self.l1), ("l2", self.l2), ("l3", self.l3)] {
            if g.sets() == 0 {
                return Err(format!("{name}: capacity too small for assoc x line"));
            }
            if g.line_bytes == 0 || !g.line_bytes.is_power_of_two() {
                return Err(format!("{name}: line size must be a power of two"));
            }
        }
        if self.l1.line_bytes != self.l2.line_bytes || self.l2.line_bytes != self.l3.line_bytes {
            return Err("all cache levels must share one line size".into());
        }
        if self.dram.channels == 0 || self.dram.banks_per_channel == 0 {
            return Err("dram: channels and banks must be > 0".into());
        }
        if !self.dram.row_bytes.is_power_of_two() {
            return Err("dram: row_bytes must be a power of two".into());
        }
        Ok(())
    }
}

/// The paper's STREAM / pointer-chase platform: dual-socket Xeon E5-2670
/// (Sandy Bridge), 2.6 GHz, 20 MiB L3 per socket, 4 DDR3-1600 channels —
/// 51.2 GB/s peak (Section III-C). Modeled as the socket the benchmarks
/// were bound to, with both sockets' worth of hardware contexts available
/// to thread-count sweeps.
pub fn sandy_bridge() -> CpuConfig {
    CpuConfig {
        name: "Sandy Bridge Xeon (E5-2670)",
        cores: 16,
        contexts: 32,
        clock: Clock::from_mhz(2600),
        l1: CacheGeometry {
            capacity: 32 << 10,
            assoc: 8,
            line_bytes: 64,
            latency_cycles: 4,
        },
        l2: CacheGeometry {
            capacity: 256 << 10,
            assoc: 8,
            line_bytes: 64,
            latency_cycles: 12,
        },
        l3: CacheGeometry {
            capacity: 20 << 20,
            assoc: 16,
            line_bytes: 64,
            latency_cycles: 35,
        },
        dram: DramConfig {
            channels: 4,
            // 8 banks x 4 ranks per channel: enough open rows for the
            // ~24 concurrent streams of a threaded STREAM run.
            banks_per_channel: 32,
            channel_bytes_per_sec: 12_800_000_000,
            row_bytes: 8 << 10,
            t_cas: Time::from_ps(13_750),
            t_rcd: Time::from_ps(13_750),
            t_rp: Time::from_ps(13_750),
            // Uncore + controller queue + cross-socket snoop on the
            // dual-socket system: loaded random-access latency lands near
            // the ~160 ns such machines measure, which in turn produces
            // the <25% chase utilization of Fig 8.
            t_controller: Time::from_ns(80),
        },
        prefetch: PrefetchConfig {
            enabled: true,
            trigger_streak: 3,
            // Streaming far enough ahead to hide the loaded latency.
            degree: 16,
        },
        store_miss_stall_cycles: 30,
    }
}

/// The paper's SpMV platform: four-socket Xeon E7-4850 v3 (Haswell),
/// 2.2 GHz, 35 MiB L3 per socket, DDR4 clocked at 1333 MHz, data
/// interleaved across all four NUMA nodes (Section III-C/E).
pub fn haswell() -> CpuConfig {
    CpuConfig {
        name: "Haswell Xeon (E7-4850 v3, 4 sockets)",
        cores: 56,
        contexts: 112,
        clock: Clock::from_mhz(2200),
        l1: CacheGeometry {
            capacity: 32 << 10,
            assoc: 8,
            line_bytes: 64,
            latency_cycles: 4,
        },
        l2: CacheGeometry {
            capacity: 256 << 10,
            assoc: 8,
            line_bytes: 64,
            latency_cycles: 12,
        },
        // 4 x 35 MiB, modeled as one shared LLC (numactl --interleave).
        l3: CacheGeometry {
            capacity: 128 << 20,
            assoc: 16,
            line_bytes: 64,
            latency_cycles: 40,
        },
        dram: DramConfig {
            // 4 channels per socket x 4 sockets at DDR4-1333.
            channels: 16,
            // 16 DDR4 banks x 4 ranks.
            banks_per_channel: 64,
            channel_bytes_per_sec: 10_664_000_000,
            row_bytes: 8 << 10,
            t_cas: Time::from_ps(14_000),
            t_rcd: Time::from_ps(14_000),
            t_rp: Time::from_ps(14_000),
            // Four-socket snoop/interleave latency.
            t_controller: Time::from_ns(90),
        },
        prefetch: PrefetchConfig {
            enabled: true,
            trigger_streak: 3,
            degree: 16,
        },
        store_miss_stall_cycles: 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        sandy_bridge().validate().unwrap();
        haswell().validate().unwrap();
    }

    #[test]
    fn sandy_bridge_peak_is_51_2_gb() {
        assert_eq!(sandy_bridge().dram.peak_bytes_per_sec(), 51_200_000_000);
    }

    #[test]
    fn geometry_sets() {
        let l1 = sandy_bridge().l1;
        assert_eq!(l1.sets(), 64); // 32K / (8 * 64)
    }

    #[test]
    fn validate_rejects_mixed_line_sizes() {
        let mut c = sandy_bridge();
        c.l2.line_bytes = 128;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_cache() {
        let mut c = sandy_bridge();
        c.l1.capacity = 256; // smaller than assoc x line
        assert!(c.validate().is_err());
    }
}
