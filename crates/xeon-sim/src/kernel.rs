//! The CPU-side thread programming model.
//!
//! Mirrors `emu_core::kernel` but over a flat 64-bit address space:
//! CPU threads do not migrate, they fetch lines through the cache
//! hierarchy. Kernels are resumable state machines with at most one
//! outstanding memory operation (stall-on-use; memory-level parallelism
//! beyond one comes from the hardware prefetcher, threads, and posted
//! stores — a good model for data-dependent pointer chasing, and adequate
//! for streaming once the prefetcher is in play).

use desim::time::Time;

/// Identifies a CPU software thread within one engine run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CpuThreadId(pub u32);

/// One operation from a CPU thread. Accesses must not cross a cache line
/// (the engine asserts this); split larger accesses in the kernel.
pub enum CpuOp {
    /// Read `bytes` at `addr` (blocking: stall-on-use).
    Load {
        /// Virtual address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Write `bytes` at `addr` through the cache (write-allocate,
    /// write-back). Posted: the thread stalls only briefly.
    Store {
        /// Virtual address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Non-temporal (streaming) store: bypasses the caches and writes
    /// combined lines straight to DRAM — how tuned STREAM avoids
    /// read-for-ownership traffic.
    StoreNt {
        /// Virtual address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Busy the core for `cycles`.
    Compute {
        /// Core cycles of work.
        cycles: u32,
    },
    /// Terminate the thread.
    Quit,
}

impl std::fmt::Debug for CpuOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CpuOp::Load { addr, bytes } => write!(f, "Load({addr:#x},{bytes}B)"),
            CpuOp::Store { addr, bytes } => write!(f, "Store({addr:#x},{bytes}B)"),
            CpuOp::StoreNt { addr, bytes } => write!(f, "StoreNt({addr:#x},{bytes}B)"),
            CpuOp::Compute { cycles } => write!(f, "Compute({cycles}cyc)"),
            CpuOp::Quit => write!(f, "Quit"),
        }
    }
}

/// Context handed to a CPU kernel at each step.
#[derive(Clone, Copy, Debug)]
pub struct CpuCtx {
    /// This thread's id.
    pub tid: CpuThreadId,
    /// The core the thread is pinned to.
    pub core: u32,
    /// Current simulated time.
    pub now: Time,
}

/// A resumable CPU thread program (see `emu_core::kernel::Kernel` for
/// the shared design rationale).
pub trait CpuKernel: Send {
    /// Produce the next operation; must eventually return [`CpuOp::Quit`].
    fn step(&mut self, ctx: &CpuCtx) -> CpuOp;
}

impl<F> CpuKernel for F
where
    F: FnMut(&CpuCtx) -> CpuOp + Send,
{
    fn step(&mut self, ctx: &CpuCtx) -> CpuOp {
        self(ctx)
    }
}

/// Replays a fixed op list then quits (tests, microbenchmarks).
pub struct CpuScript {
    ops: std::vec::IntoIter<CpuOp>,
}

impl CpuScript {
    /// Wrap an op list; a trailing `Quit` is implicit.
    pub fn new(ops: Vec<CpuOp>) -> Self {
        CpuScript {
            ops: ops.into_iter(),
        }
    }
}

impl CpuKernel for CpuScript {
    fn step(&mut self, _ctx: &CpuCtx) -> CpuOp {
        self.ops.next().unwrap_or(CpuOp::Quit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_replays() {
        let mut s = CpuScript::new(vec![CpuOp::Compute { cycles: 1 }]);
        let ctx = CpuCtx {
            tid: CpuThreadId(0),
            core: 0,
            now: Time::ZERO,
        };
        assert!(matches!(s.step(&ctx), CpuOp::Compute { .. }));
        assert!(matches!(s.step(&ctx), CpuOp::Quit));
    }
}
