//! DDR DRAM model: channels, banks, and open-page row buffers.
//!
//! Address mapping (documented because Fig 7's shape depends on it):
//!
//! * **channel** — line-interleaved: `(addr / 64) % channels`, so
//!   sequential streams use all channels;
//! * **row granule** — `addr / row_bytes` (8 KiB): one DRAM page of
//!   physically contiguous data;
//! * **bank** — `granule % banks`, so the row buffers of one channel can
//!   keep `banks` distinct granules open at once.
//!
//! Consequences, exactly as the paper observes: random accesses inside a
//! single 8 KiB region are row-buffer hits after the first touch; working
//! regions up to `banks × 8 KiB` still enjoy open rows; anything larger
//! thrashes the row buffers and every access pays activate+precharge.

use crate::config::DramConfig;
use desim::server::FifoServer;
use desim::time::Time;

/// SplitMix64 finalizer: the bank-index hash.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Bank {
    open_granule: Option<u64>,
    server: FifoServer,
}

struct Channel {
    banks: Vec<Bank>,
    bus: FifoServer,
}

/// Counters for the DRAM subsystem.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Demand + prefetch line reads.
    pub reads: u64,
    /// Writebacks and non-temporal stores.
    pub writes: u64,
    /// Accesses that found their row open.
    pub row_hits: u64,
    /// Accesses that had to activate a row.
    pub row_misses: u64,
}

impl DramStats {
    /// Row-buffer hit rate in [0, 1].
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The DRAM subsystem of one [`crate::config::CpuConfig`].
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<Channel>,
    line_transfer: Time,
    stats: DramStats,
}

impl Dram {
    /// Build from configuration; `line_bytes` is the cache-line size
    /// transferred per request.
    pub fn new(cfg: DramConfig, line_bytes: u32) -> Self {
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                banks: (0..cfg.banks_per_channel)
                    .map(|_| Bank {
                        open_granule: None,
                        server: FifoServer::new(),
                    })
                    .collect(),
                bus: FifoServer::new(),
            })
            .collect();
        // ps per line = bytes * 1e12 / B/s.
        let line_transfer = Time::from_ps(
            (line_bytes as u128 * desim::time::PS_PER_S as u128 / cfg.channel_bytes_per_sec as u128)
                as u64,
        );
        Dram {
            cfg,
            channels,
            line_transfer,
            stats: DramStats::default(),
        }
    }

    #[inline]
    fn route(&self, addr: u64) -> (usize, usize, u64) {
        let channel = ((addr >> 6) % self.cfg.channels as u64) as usize;
        let granule = addr / self.cfg.row_bytes;
        // Banks are selected by a hash of the granule (real controllers
        // XOR row bits into the bank index) so that concurrent streams at
        // power-of-two-separated bases do not all collide in bank 0.
        let bank = (mix(granule) % self.cfg.banks_per_channel as u64) as usize;
        (channel, bank, granule)
    }

    /// Issue one line-sized request at time `now`; returns when the data
    /// is available at the controller.
    pub fn request(&mut self, now: Time, addr: u64, write: bool) -> Time {
        let (ci, bi, granule) = self.route(addr);
        let ch = &mut self.channels[ci];
        let bank = &mut ch.banks[bi];
        let row_service = if bank.open_granule == Some(granule) {
            self.stats.row_hits += 1;
            self.cfg.t_cas
        } else {
            self.stats.row_misses += 1;
            let had_open = bank.open_granule.is_some();
            bank.open_granule = Some(granule);
            if had_open {
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
            } else {
                self.cfg.t_rcd + self.cfg.t_cas
            }
        };
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        let bank_grant = bank.server.offer(now, row_service);
        let bus_grant = ch.bus.offer(bank_grant.done, self.line_transfer);
        bus_grant.done + self.cfg.t_controller
    }

    /// Subsystem counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Total bus busy time across channels (for utilization).
    pub fn bus_busy(&self) -> Time {
        self.channels.iter().map(|c| c.bus.busy_time()).sum()
    }

    /// Aggregate bus utilization over `[0, horizon]`.
    pub fn bus_utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        self.bus_busy().ps() as f64 / (horizon.ps() as f64 * self.cfg.channels as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sandy_bridge;

    fn dram() -> Dram {
        Dram::new(sandy_bridge().dram, 64)
    }

    #[test]
    fn first_access_activates_then_row_hits() {
        let mut d = dram();
        let t1 = d.request(Time::ZERO, 0, false);
        // Same 8 KiB granule, later line (keep the channel identical:
        // stride by 64 * channels).
        let t2 = d.request(t1, 64 * 4, false);
        let s = d.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
        assert!(t2 > t1);
    }

    /// Find a granule != `g` that the hash sends to the same (different)
    /// bank, for conflict tests.
    fn granule_with_bank(reference: u64, banks: u64, same: bool) -> u64 {
        let want = mix(reference) % banks;
        (reference + 1..)
            .find(|&g| (mix(g) % banks == want) == same)
            .unwrap()
    }

    #[test]
    fn different_granule_same_bank_thrashes() {
        let mut d = dram();
        let cfg = sandy_bridge().dram;
        let banks = cfg.banks_per_channel as u64;
        let g2 = granule_with_bank(0, banks, true);
        let a = 0u64;
        let b = g2 * cfg.row_bytes;
        let mut now = Time::ZERO;
        for _ in 0..4 {
            now = d.request(now, a, false);
            now = d.request(now, b, false);
        }
        assert_eq!(d.stats().row_hits, 0, "alternating granules never hit");
    }

    #[test]
    fn different_banks_keep_rows_open() {
        let mut d = dram();
        let cfg = sandy_bridge().dram;
        let banks = cfg.banks_per_channel as u64;
        let g2 = granule_with_bank(0, banks, false);
        let a = 0u64;
        let b = g2 * cfg.row_bytes;
        let mut now = Time::ZERO;
        now = d.request(now, a, false);
        now = d.request(now, b, false);
        now = d.request(now, a + 64 * 4, false);
        let _ = d.request(now, b + 64 * 4, false);
        let s = d.stats();
        assert_eq!(s.row_misses, 2);
        assert_eq!(s.row_hits, 2);
    }

    #[test]
    fn sequential_saturates_all_channels() {
        let mut d = dram();
        // 4096 sequential lines at time 0: they spread over 4 channels,
        // so the makespan is ~1024 line transfers per channel.
        let mut done = Time::ZERO;
        for i in 0..4096u64 {
            done = done.max(d.request(Time::ZERO, i * 64, false));
        }
        let per_line = Time::from_ps(64 * 1_000_000 / 12_800); // 5 ns
        let ideal = per_line * 1024;
        assert!(done >= ideal, "can't beat the bus: {done} < {ideal}");
        assert!(
            done < ideal * 2,
            "sequential should be near bus-bound: {done} vs {ideal}"
        );
        assert!(d.stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = dram();
        d.request(Time::ZERO, 0, true);
        d.request(Time::ZERO, 64, false);
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
    }
}
