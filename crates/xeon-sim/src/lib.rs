//! # xeon-sim — the cache-based comparison platform
//!
//! The paper contrasts the Emu Chick against two Intel Xeon servers
//! (Section III-C): a dual-socket Sandy Bridge E5-2670 for STREAM and
//! pointer chasing, and a four-socket Haswell E7-4850 v3 for SpMV. This
//! crate is a from-scratch discrete-event model of such machines:
//!
//! * [`cache`] — functional set-associative L1/L2/L3 with true LRU and
//!   write-back/write-allocate semantics;
//! * [`prefetch`] — a per-core unit-stride stream prefetcher (the reason
//!   STREAM approaches peak and shuffled pointer chasing does not);
//! * [`dram`] — channels, banks, and 8 KiB open-page row buffers (the
//!   reason pointer-chase bandwidth peaks when a shuffle block matches
//!   one DRAM page, Fig 7);
//! * [`engine`] — stall-on-use threads pinned to cores, driven by the
//!   same resumable-kernel style as the Emu engine;
//! * [`config`] — platform descriptions and the paper's two presets
//!   ([`config::sandy_bridge`], [`config::haswell`]).
//!
//! ```
//! use xeon_sim::prelude::*;
//!
//! let mut e = CpuEngine::new(sandy_bridge());
//! e.add_thread(Box::new(CpuScript::new(vec![
//!     CpuOp::Load { addr: 0x1000, bytes: 8 },
//!     CpuOp::Load { addr: 0x1008, bytes: 8 }, // same line: L1 hit
//! ])));
//! let r = e.run();
//! assert_eq!(r.counters.dram_loads, 1);
//! assert_eq!(r.counters.l1_hits, 1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod dram;
pub mod engine;
pub mod kernel;
pub mod prefetch;

/// Convenient glob import.
pub mod prelude {
    pub use crate::config::{haswell, sandy_bridge, CpuConfig};
    pub use crate::engine::{CpuEngine, CpuReport};
    pub use crate::kernel::{CpuCtx, CpuKernel, CpuOp, CpuScript, CpuThreadId};
}
