//! Per-core hardware stream prefetcher.
//!
//! Tracks several concurrent ascending unit-stride line streams (a real
//! L2 streamer follows one per 4 KiB page, 16–32 at once) from the
//! demand-miss sequence; once a stream is confirmed it requests the next
//! `degree` lines. This is what lets the Xeon reach near-peak STREAM
//! bandwidth with stall-on-use cores — STREAM interleaves misses from
//! two or three arrays, so single-stream tracking would never fire — and
//! what a shuffled pointer chase defeats (the paper's "prefetch engines
//! are confounded").

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_line: u64,
    streak: u32,
    /// Highest line already requested, to avoid duplicate requests.
    horizon: u64,
    /// LRU stamp.
    lru: u64,
    valid: bool,
}

/// Multi-stream detection state for one core.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    enabled: bool,
    trigger_streak: u32,
    degree: u32,
    entries: Vec<StreamEntry>,
    tick: u64,
    issued: u64,
}

/// Concurrent streams tracked per core.
const STREAMS: usize = 16;

impl Prefetcher {
    /// Build from the platform's prefetch configuration.
    pub fn new(cfg: crate::config::PrefetchConfig) -> Self {
        Prefetcher {
            enabled: cfg.enabled,
            trigger_streak: cfg.trigger_streak,
            degree: cfg.degree,
            entries: vec![
                StreamEntry {
                    last_line: 0,
                    streak: 0,
                    horizon: 0,
                    lru: 0,
                    valid: false,
                };
                STREAMS
            ],
            tick: 0,
            issued: 0,
        }
    }

    /// Observe a demand miss on `line` (line index = addr / line_bytes).
    /// Returns the line indices to prefetch (possibly empty).
    pub fn on_miss(&mut self, line: u64) -> Vec<u64> {
        if !self.enabled {
            return Vec::new();
        }
        self.tick += 1;
        let tick = self.tick;
        // Match an existing stream: the miss continues it if it lands
        // just past the last line (allowing a small jitter window of 2,
        // since prefetch hits remove intermediate misses).
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.valid && line > e.last_line && line - e.last_line <= 2)
        {
            e.streak += 1;
            e.last_line = line;
            e.lru = tick;
            if e.streak < self.trigger_streak {
                return Vec::new();
            }
            let target = line + self.degree as u64;
            let from = e.horizon.max(line) + 1;
            let out: Vec<u64> = (from..=target).collect();
            e.horizon = target;
            self.issued += out.len() as u64;
            return out;
        }
        // Re-touch of the same line: refresh LRU, no new information.
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.last_line == line)
        {
            e.lru = tick;
            return Vec::new();
        }
        // Allocate a new stream over the LRU slot.
        let slot = self
            .entries
            .iter_mut()
            .min_by_key(|e| (e.valid, e.lru))
            .expect("nonzero stream table");
        *slot = StreamEntry {
            last_line: line,
            streak: 1,
            horizon: line,
            lru: tick,
            valid: true,
        };
        Vec::new()
    }

    /// Total prefetch requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchConfig;

    fn pf() -> Prefetcher {
        Prefetcher::new(PrefetchConfig {
            enabled: true,
            trigger_streak: 2,
            degree: 4,
        })
    }

    #[test]
    fn needs_streak_before_firing() {
        let mut p = pf();
        assert!(p.on_miss(10).is_empty());
        let got = p.on_miss(11);
        assert_eq!(got, vec![12, 13, 14, 15]);
    }

    #[test]
    fn advances_horizon_without_duplicates() {
        let mut p = pf();
        p.on_miss(10);
        assert_eq!(p.on_miss(11), vec![12, 13, 14, 15]);
        assert_eq!(p.on_miss(12), vec![16]);
        assert_eq!(p.on_miss(13), vec![17]);
        assert_eq!(p.issued(), 6);
    }

    #[test]
    fn tracks_interleaved_streams() {
        // Two interleaved ascending streams (STREAM's a and b arrays)
        // must both be detected.
        let mut p = pf();
        assert!(p.on_miss(1000).is_empty());
        assert!(p.on_miss(9000).is_empty());
        let a = p.on_miss(1001);
        assert_eq!(a, vec![1002, 1003, 1004, 1005], "stream A fires");
        let b = p.on_miss(9001);
        assert_eq!(b, vec![9002, 9003, 9004, 9005], "stream B fires");
    }

    #[test]
    fn random_pattern_never_fires() {
        let mut p = pf();
        for line in [5u64, 99_000, 3, 1_000_000, 420_000, 7_777] {
            assert!(p.on_miss(line).is_empty(), "fired on random miss {line}");
        }
    }

    #[test]
    fn stream_reset_on_break() {
        let mut p = pf();
        p.on_miss(10);
        p.on_miss(11); // fires
                       // A far jump starts a NEW stream; the old one stays tracked but
                       // this new location must re-earn its streak.
        assert!(p.on_miss(500_000).is_empty());
        assert_eq!(p.on_miss(500_001), vec![500_002, 500_003, 500_004, 500_005]);
    }

    #[test]
    fn jitter_window_tolerates_prefetch_swallowed_misses() {
        // With prefetching, the next demand miss may skip a line (it hit
        // in flight); a +2 jump still continues the stream.
        let mut p = pf();
        p.on_miss(100);
        p.on_miss(101);
        let got = p.on_miss(103);
        assert!(!got.is_empty(), "stream should survive +2 jitter");
    }

    #[test]
    fn disabled_is_silent() {
        let mut p = Prefetcher::new(PrefetchConfig {
            enabled: false,
            trigger_streak: 2,
            degree: 4,
        });
        p.on_miss(1);
        assert!(p.on_miss(2).is_empty());
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn many_streams_lru_replacement() {
        let mut p = pf();
        // 40 distinct streams overflow the 16-entry table without panicking.
        for s in 0..40u64 {
            p.on_miss(s * 100_000);
        }
        // The most recent ones still fire.
        assert!(p.on_miss(39 * 100_000 + 1).len() == 4);
    }
}
