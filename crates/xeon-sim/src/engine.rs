//! The CPU discrete-event engine: stall-on-use threads over a functional
//! cache hierarchy, a stream prefetcher, and the banked open-page DRAM.
//!
//! Unlike the Emu engine, there is no thread migration and no slot
//! management: a thread is pinned to core `tid % cores` and every memory
//! access resolves through that core's L1/L2, the shared L3, the
//! in-flight prefetch table, and finally DRAM.

use crate::cache::{Access, Cache};
use crate::config::CpuConfig;
use crate::dram::{Dram, DramStats};
use crate::kernel::{CpuCtx, CpuKernel, CpuOp, CpuThreadId};
use crate::prefetch::Prefetcher;
use desim::queue::EventQueue;
use desim::server::FifoServer;
use desim::time::Time;
use std::collections::HashMap;

/// Where a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HitLevel {
    L1,
    L2,
    L3,
    InFlight,
    Dram,
}

/// Aggregate counters for one run.
#[derive(Debug, Clone, Default)]
pub struct CpuCounters {
    /// Demand loads that hit L1 / L2 / L3 / an in-flight prefetch / DRAM.
    pub l1_hits: u64,
    /// See [`CpuCounters::l1_hits`].
    pub l2_hits: u64,
    /// See [`CpuCounters::l1_hits`].
    pub l3_hits: u64,
    /// Demand loads satisfied by an in-flight (or just-landed) prefetch.
    pub prefetch_hits: u64,
    /// Demand loads that went all the way to DRAM.
    pub dram_loads: u64,
    /// Stores executed (cached path).
    pub stores: u64,
    /// Non-temporal stores executed.
    pub nt_stores: u64,
    /// Dirty-line writebacks sent to DRAM.
    pub writebacks: u64,
    /// Prefetch requests sent to DRAM.
    pub prefetches: u64,
}

/// Report of one CPU engine run.
#[derive(Debug, Clone)]
pub struct CpuReport {
    /// Time of the final event.
    pub makespan: Time,
    /// Demand/prefetch counters.
    pub counters: CpuCounters,
    /// DRAM subsystem counters.
    pub dram: DramStats,
    /// Aggregate DRAM bus utilization over the run.
    pub dram_bus_utilization: f64,
    /// Number of software threads run.
    pub threads: u64,
}

impl CpuReport {
    /// Bandwidth for an externally accounted (semantic) byte count.
    pub fn bandwidth_for(&self, semantic_bytes: u64) -> desim::stats::Bandwidth {
        desim::stats::Bandwidth::from_bytes(semantic_bytes, self.makespan)
    }

    /// Bytes physically moved to/from DRAM (lines x 64 B).
    pub fn dram_bytes(&self, line_bytes: u64) -> u64 {
        (self.dram.reads + self.dram.writes) * line_bytes
    }
}

enum Event {
    Ready(CpuThreadId),
}

struct Thread {
    kernel: Option<Box<dyn CpuKernel>>,
    core: u32,
    /// Line currently merging in this thread's write-combining buffer.
    nt_line: Option<u64>,
}

/// The CPU machine simulator.
pub struct CpuEngine {
    cfg: CpuConfig,
    q: EventQueue<Event>,
    threads: Vec<Thread>,
    cores: Vec<FifoServer>,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    dram: Dram,
    prefetchers: Vec<Prefetcher>,
    /// Lines requested from DRAM (prefetch or demand) that have not been
    /// installed yet: line index -> fill time.
    inflight: HashMap<u64, Time>,
    counters: CpuCounters,
    live: u64,
}

impl CpuEngine {
    /// Build an engine over `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: CpuConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid CpuConfig: {e}");
        }
        let cores = cfg.cores as usize;
        CpuEngine {
            q: EventQueue::new(),
            threads: Vec::new(),
            cores: (0..cores).map(|_| FifoServer::new()).collect(),
            l1: (0..cores).map(|_| Cache::new(cfg.l1)).collect(),
            l2: (0..cores).map(|_| Cache::new(cfg.l2)).collect(),
            l3: Cache::new(cfg.l3),
            dram: Dram::new(cfg.dram, cfg.l1.line_bytes),
            prefetchers: (0..cores).map(|_| Prefetcher::new(cfg.prefetch)).collect(),
            inflight: HashMap::new(),
            counters: CpuCounters::default(),
            live: 0,
            cfg,
        }
    }

    /// The platform configuration.
    pub fn cfg(&self) -> &CpuConfig {
        &self.cfg
    }

    /// Add a software thread (pinned to core `index % cores`).
    pub fn add_thread(&mut self, kernel: Box<dyn CpuKernel>) -> CpuThreadId {
        let tid = CpuThreadId(self.threads.len() as u32);
        let core = tid.0 % self.cfg.cores;
        self.threads.push(Thread {
            kernel: Some(kernel),
            core,
            nt_line: None,
        });
        self.live += 1;
        self.q.schedule(Time::ZERO, Event::Ready(tid));
        tid
    }

    /// Run all threads to completion.
    pub fn run(mut self) -> CpuReport {
        while let Some((now, Event::Ready(tid))) = self.q.pop() {
            self.step_thread(tid, now);
        }
        assert_eq!(self.live, 0, "threads leaked");
        let makespan = self.q.now();
        self.counters.prefetches = self.prefetchers.iter().map(Prefetcher::issued).sum();
        CpuReport {
            makespan,
            counters: self.counters.clone(),
            dram: self.dram.stats(),
            dram_bus_utilization: self.dram.bus_utilization(makespan),
            threads: self.threads.len() as u64,
        }
    }

    fn step_thread(&mut self, tid: CpuThreadId, now: Time) {
        let core = self.threads[tid.0 as usize].core;
        let ctx = CpuCtx { tid, core, now };
        let op = self.threads[tid.0 as usize]
            .kernel
            .as_mut()
            .expect("live thread has a kernel")
            .step(&ctx);
        match op {
            CpuOp::Compute { cycles } => {
                let grant = self.cores[core as usize].offer(now, self.cfg.cycles(cycles));
                self.q.schedule(grant.done, Event::Ready(tid));
            }
            CpuOp::Load { addr, bytes } => {
                self.assert_in_line(addr, bytes);
                let (level, avail) = self.demand_load(core, addr, now);
                let lat = match level {
                    HitLevel::L1 => self.cfg.cycles(self.cfg.l1.latency_cycles),
                    HitLevel::L2 => self.cfg.cycles(self.cfg.l2.latency_cycles),
                    HitLevel::L3 | HitLevel::InFlight => {
                        self.cfg.cycles(self.cfg.l3.latency_cycles)
                    }
                    HitLevel::Dram => self.cfg.cycles(self.cfg.l3.latency_cycles),
                };
                // Issue occupies the core for one cycle; the thread
                // resumes when the data is back.
                let grant = self.cores[core as usize].offer(now, self.cfg.cycles(1));
                let done = avail.max(grant.done) + lat;
                self.q.schedule(done, Event::Ready(tid));
            }
            CpuOp::Store { addr, bytes } => {
                self.assert_in_line(addr, bytes);
                self.counters.stores += 1;
                let hit = self.store_allocate(core, addr, now);
                let stall = if hit {
                    1
                } else {
                    self.cfg.store_miss_stall_cycles
                };
                let grant = self.cores[core as usize].offer(now, self.cfg.cycles(stall));
                self.q.schedule(grant.done, Event::Ready(tid));
            }
            CpuOp::StoreNt { addr, bytes } => {
                self.assert_in_line(addr, bytes);
                self.counters.nt_stores += 1;
                // Write-combining buffer: consecutive NT stores to one
                // line merge; DRAM is charged once per distinct line.
                let line = self.l3.line_of(addr);
                if self.threads[tid.0 as usize].nt_line != Some(line) {
                    self.threads[tid.0 as usize].nt_line = Some(line);
                    let _ = self.dram.request(now, addr, true);
                }
                let grant = self.cores[core as usize].offer(now, self.cfg.cycles(1));
                self.q.schedule(grant.done, Event::Ready(tid));
            }
            CpuOp::Quit => {
                self.threads[tid.0 as usize].kernel = None;
                self.live -= 1;
            }
        }
    }

    fn assert_in_line(&self, addr: u64, bytes: u32) {
        let line = self.cfg.l1.line_bytes as u64;
        assert!(bytes > 0 && bytes as u64 <= line, "access size {bytes}");
        assert_eq!(
            addr / line,
            (addr + bytes as u64 - 1) / line,
            "access {addr:#x}+{bytes} crosses a cache line"
        );
    }

    /// Resolve a demand load: returns the satisfying level and the time
    /// the line is available at L1.
    fn demand_load(&mut self, core: u32, addr: u64, now: Time) -> (HitLevel, Time) {
        let c = core as usize;
        if self.l1[c].probe(addr, false) {
            self.counters.l1_hits += 1;
            return (HitLevel::L1, now);
        }
        if self.l2[c].probe(addr, false) {
            self.counters.l2_hits += 1;
            self.fill_l1(c, addr, false);
            return (HitLevel::L2, now);
        }
        let line_bytes = self.cfg.l1.line_bytes as u64;
        let line_idx = addr / line_bytes;
        if self.l3.probe(addr, false) {
            // Present in L3 — possibly a prefetch still in flight (the
            // tag is installed at prefetch-issue time; the data arrives
            // at its recorded fill time).
            if let Some(fill) = self.inflight.remove(&line_idx) {
                self.counters.prefetch_hits += 1;
                // Prefetch hits keep training the streamer, so confirmed
                // streams run ahead continuously instead of stalling at
                // each horizon.
                self.train_and_prefetch(c, line_idx, now);
                self.fill_l2(c, addr, false);
                self.fill_l1(c, addr, false);
                return (HitLevel::InFlight, fill.max(now));
            }
            self.counters.l3_hits += 1;
            self.fill_l2(c, addr, false);
            self.fill_l1(c, addr, false);
            return (HitLevel::L3, now);
        }
        // Miss everywhere. Any in-flight record for this line is stale
        // (the tag was evicted before the data was ever used).
        self.inflight.remove(&line_idx);
        self.train_and_prefetch(c, line_idx, now);
        self.gc_inflight(now);
        self.counters.dram_loads += 1;
        let fill = self.dram.request(now, addr, false);
        self.install_all(c, addr, false);
        (HitLevel::Dram, fill)
    }

    /// Feed the streamer one access and issue whatever it asks for.
    /// Prefetched lines install their L3 tags immediately — and are
    /// therefore subject to normal capacity eviction, so prefetching far
    /// ahead of use buys nothing once the intervening working set
    /// exceeds the LLC.
    fn train_and_prefetch(&mut self, c: usize, line_idx: u64, now: Time) {
        let line_bytes = self.cfg.l1.line_bytes as u64;
        for pf_line in self.prefetchers[c].on_miss(line_idx) {
            let pf_addr = pf_line * line_bytes;
            if self.l3.contains(pf_addr) {
                continue;
            }
            let fill = self.dram.request(now, pf_addr, false);
            self.fill_l3(pf_addr, false);
            self.inflight.insert(pf_line, fill);
        }
    }

    /// Bound the in-flight map: entries whose fill time has passed are
    /// either already resident in L3 (the tag check serves them) or were
    /// evicted unused — both safe to forget.
    fn gc_inflight(&mut self, now: Time) {
        if self.inflight.len() > 1 << 18 {
            self.inflight.retain(|_, &mut fill| fill > now);
        }
    }

    /// Write-allocate store path; returns whether it hit in L1 or L2.
    fn store_allocate(&mut self, core: u32, addr: u64, now: Time) -> bool {
        let c = core as usize;
        if self.l1[c].probe(addr, true) {
            return true;
        }
        if self.l2[c].probe(addr, true) {
            self.fill_l1(c, addr, true);
            return true;
        }
        if self.l3.probe(addr, true) {
            self.fill_l2(c, addr, true);
            self.fill_l1(c, addr, true);
            return false;
        }
        // Read-for-ownership from DRAM (fire and forget for timing; the
        // store buffer hides most of it, modeled by the fixed stall).
        let _ = self.dram.request(now, addr, false);
        self.install_all(c, addr, true);
        false
    }

    fn install_all(&mut self, c: usize, addr: u64, dirty: bool) {
        self.fill_l3(addr, dirty);
        self.fill_l2(c, addr, dirty);
        self.fill_l1(c, addr, dirty);
    }

    fn fill_l1(&mut self, c: usize, addr: u64, dirty: bool) {
        if let Access::MissEvictDirty { line } = self.l1[c].install(addr, dirty) {
            // Dirty L1 victims write back into L2.
            self.l2[c].probe(line, true);
        }
    }

    fn fill_l2(&mut self, c: usize, addr: u64, dirty: bool) {
        if let Access::MissEvictDirty { line } = self.l2[c].install(addr, dirty) {
            self.l3.probe(line, true);
        }
    }

    fn fill_l3(&mut self, addr: u64, dirty: bool) {
        if let Access::MissEvictDirty { line } = self.l3.install(addr, dirty) {
            self.counters.writebacks += 1;
            let _ = self.dram.request(self.q.now(), line, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sandy_bridge;
    use crate::kernel::CpuScript;

    fn run_ops(ops: Vec<CpuOp>) -> CpuReport {
        let mut e = CpuEngine::new(sandy_bridge());
        e.add_thread(Box::new(CpuScript::new(ops)));
        e.run()
    }

    #[test]
    fn repeat_loads_hit_l1() {
        let r = run_ops(vec![
            CpuOp::Load {
                addr: 0x1000,
                bytes: 8,
            },
            CpuOp::Load {
                addr: 0x1008,
                bytes: 8,
            },
            CpuOp::Load {
                addr: 0x1010,
                bytes: 8,
            },
        ]);
        assert_eq!(r.counters.dram_loads, 1);
        assert_eq!(r.counters.l1_hits, 2);
    }

    #[test]
    fn dram_load_is_slow_l1_hit_is_fast() {
        let miss = run_ops(vec![CpuOp::Load {
            addr: 0x1000,
            bytes: 8,
        }])
        .makespan;
        let hit2 = run_ops(vec![
            CpuOp::Load {
                addr: 0x1000,
                bytes: 8,
            },
            CpuOp::Load {
                addr: 0x1000,
                bytes: 8,
            },
        ])
        .makespan;
        // The second (L1-hit) load adds far less than the first.
        assert!(hit2 - miss < miss / 4, "miss {miss}, +hit {hit2}");
        // A cold DRAM load costs tens of ns.
        assert!(
            miss > Time::from_ns(40) && miss < Time::from_ns(400),
            "{miss}"
        );
    }

    #[test]
    fn sequential_loads_trigger_prefetch() {
        let ops: Vec<CpuOp> = (0..64u64)
            .map(|i| CpuOp::Load {
                addr: i * 64,
                bytes: 8,
            })
            .collect();
        let r = run_ops(ops);
        assert!(r.counters.prefetches > 0, "prefetcher silent");
        assert!(
            r.counters.prefetch_hits > 30,
            "few prefetch hits: {:?}",
            r.counters
        );
        // Far fewer demand DRAM loads than lines.
        assert!(r.counters.dram_loads < 10, "{:?}", r.counters);
    }

    #[test]
    fn random_loads_defeat_prefetcher() {
        let addrs = desim::rng::uniform_indices(256, 1 << 30, 42);
        let ops: Vec<CpuOp> = addrs
            .iter()
            .map(|&a| CpuOp::Load {
                addr: (a / 64) * 64,
                bytes: 8,
            })
            .collect();
        let r = run_ops(ops);
        assert_eq!(r.counters.prefetch_hits, 0);
        assert!(r.counters.dram_loads as usize > 200);
    }

    #[test]
    fn store_then_load_hits() {
        let r = run_ops(vec![
            CpuOp::Store {
                addr: 0x2000,
                bytes: 8,
            },
            CpuOp::Load {
                addr: 0x2000,
                bytes: 8,
            },
        ]);
        assert_eq!(r.counters.l1_hits, 1);
        assert_eq!(r.counters.stores, 1);
    }

    #[test]
    fn nt_stores_bypass_cache() {
        let r = run_ops(vec![
            CpuOp::StoreNt {
                addr: 0x3000,
                bytes: 8,
            },
            CpuOp::Load {
                addr: 0x3000,
                bytes: 8,
            },
        ]);
        // The NT store did not allocate, so the load misses to DRAM.
        assert_eq!(r.counters.dram_loads, 1);
        assert_eq!(r.counters.nt_stores, 1);
        assert!(r.dram.writes >= 1);
    }

    #[test]
    fn capacity_thrash_produces_writebacks() {
        // Dirty a working set far beyond L3 (20 MiB): sweep 40 MiB twice.
        let line = 64u64;
        let lines = (40 << 20) / line;
        let mut ops = Vec::new();
        for pass in 0..2 {
            let _ = pass;
            for i in (0..lines).step_by(64) {
                ops.push(CpuOp::Store {
                    addr: i * line,
                    bytes: 8,
                });
            }
        }
        let r = run_ops(ops);
        assert!(r.counters.writebacks > 0, "{:?}", r.counters);
    }

    #[test]
    #[should_panic(expected = "crosses a cache line")]
    fn line_crossing_rejected() {
        run_ops(vec![CpuOp::Load { addr: 60, bytes: 8 }]);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            run_ops(
                (0..128u64)
                    .map(|i| CpuOp::Load {
                        addr: i * 128,
                        bytes: 8,
                    })
                    .collect(),
            )
        };
        assert_eq!(mk().makespan, mk().makespan);
    }
}
