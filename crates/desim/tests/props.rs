//! Property-based tests of the simulation kernel's invariants.

use desim::server::{FifoServer, Link, MultiServer};
use desim::stats::{LogHistogram, Summary};
use desim::time::Time;
use desim::EventQueue;
use proptest::prelude::*;

proptest! {
    /// FIFO server: with sorted arrivals, completions are nondecreasing,
    /// service intervals never overlap, and busy time is conserved.
    #[test]
    fn fifo_server_conservation(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..200)
    ) {
        let mut arrivals: Vec<(u64, u64)> = reqs;
        arrivals.sort_unstable();
        let mut s = FifoServer::new();
        let mut last_done = Time::ZERO;
        let mut total_service = Time::ZERO;
        for &(at, dur) in &arrivals {
            let g = s.offer(Time::from_ns(at), Time::from_ns(dur));
            // Service starts no earlier than arrival and no earlier than
            // the previous completion.
            prop_assert!(g.start >= Time::from_ns(at));
            prop_assert!(g.start >= last_done);
            prop_assert_eq!(g.done, g.start + Time::from_ns(dur));
            last_done = g.done;
            total_service += Time::from_ns(dur);
        }
        prop_assert_eq!(s.busy_time(), total_service);
        prop_assert_eq!(s.served(), arrivals.len() as u64);
    }

    /// Multi-server: total busy is conserved and the k-server bound holds
    /// (aggregate utilization at most 1.0).
    #[test]
    fn multiserver_conservation(
        k in 1usize..8,
        reqs in prop::collection::vec((0u64..5_000, 1u64..300), 1..100)
    ) {
        let mut arrivals: Vec<(u64, u64)> = reqs;
        arrivals.sort_unstable();
        let mut m = MultiServer::new(k);
        let mut total_service = Time::ZERO;
        let mut makespan = Time::ZERO;
        for &(at, dur) in &arrivals {
            let g = m.offer(Time::from_ns(at), Time::from_ns(dur));
            prop_assert!(g.start >= Time::from_ns(at));
            total_service += Time::from_ns(dur);
            makespan = makespan.max(g.done);
        }
        prop_assert_eq!(m.busy_time(), total_service);
        let util = m.utilization(makespan);
        prop_assert!(util <= 1.0 + 1e-9, "utilization {util}");
    }

    /// Event queue pops in (time, insertion) order for arbitrary input.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_ns(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }

    /// Merging summaries in any split equals the single-stream summary.
    #[test]
    fn summary_merge_split_invariant(
        xs in prop::collection::vec(-1e6f64..1e6, 2..200),
        cut in 0usize..200
    ) {
        let cut = cut.min(xs.len());
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..cut].iter().for_each(|&x| a.record(x));
        xs[cut..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Histogram quantiles are monotone in q and bracket min/max.
    #[test]
    fn histogram_quantiles_monotone(samples in prop::collection::vec(1u64..1_000_000, 1..200)) {
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(Time::from_ps(s));
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
        let max = *samples.iter().max().unwrap();
        // The top quantile's bucket upper bound is at least the max sample.
        prop_assert!(h.quantile(1.0) >= Time::from_ps(max));
    }

    /// Link: completion is monotone in arrival for equal sizes, and the
    /// transfer time scales linearly with bytes.
    #[test]
    fn link_monotone_and_linear(
        bw in 1_000_000u64..100_000_000_000,
        sizes in prop::collection::vec(1u64..100_000, 1..50)
    ) {
        let mut l = Link::new(bw, Time::from_ns(10));
        let mut last = Time::ZERO;
        let mut at = Time::ZERO;
        for &s in &sizes {
            let done = l.send(at, s);
            prop_assert!(done >= last, "completion must be monotone");
            last = done;
            at += Time::from_ns(1);
        }
        // Linearity of occupancy within fixed-point resolution.
        let one = l.occupancy(1000).ps() as i128;
        let ten = l.occupancy(10_000).ps() as i128;
        prop_assert!((ten - 10 * one).abs() <= 10, "occupancy not linear: {one} vs {ten}");
    }
}
