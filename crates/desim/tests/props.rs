//! Randomized (seeded, deterministic) tests of the simulation kernel's
//! invariants. Each test sweeps a fixed set of seeds via
//! [`test_support::cases`] so failures are reproducible without any
//! external property-testing framework.

use desim::server::{FifoServer, Link, MultiServer};
use desim::stats::{LogHistogram, Summary};
use desim::time::Time;
use desim::EventQueue;
use test_support::{cases, Rng64};

const CASES: u64 = 64;

fn arrivals(rng: &mut Rng64, max_at: u64, max_dur: u64, max_len: usize) -> Vec<(u64, u64)> {
    let len = rng.gen_range(1..max_len);
    let mut v: Vec<(u64, u64)> = (0..len)
        .map(|_| (rng.gen_range(0..max_at), rng.gen_range(1..max_dur)))
        .collect();
    v.sort_unstable();
    v
}

/// FIFO server: with sorted arrivals, completions are nondecreasing,
/// service intervals never overlap, and busy time is conserved.
#[test]
fn fifo_server_conservation() {
    cases(CASES, 0xF1F0, |_case, rng| {
        let reqs = arrivals(rng, 10_000, 500, 200);
        let mut s = FifoServer::new();
        let mut last_done = Time::ZERO;
        let mut total_service = Time::ZERO;
        for &(at, dur) in &reqs {
            let g = s.offer(Time::from_ns(at), Time::from_ns(dur));
            // Service starts no earlier than arrival and no earlier than
            // the previous completion.
            assert!(g.start >= Time::from_ns(at));
            assert!(g.start >= last_done);
            assert_eq!(g.done, g.start + Time::from_ns(dur));
            last_done = g.done;
            total_service += Time::from_ns(dur);
        }
        assert_eq!(s.busy_time(), total_service);
        assert_eq!(s.served(), reqs.len() as u64);
    });
}

/// Multi-server: total busy is conserved and the k-server bound holds
/// (aggregate utilization at most 1.0).
#[test]
fn multiserver_conservation() {
    cases(CASES, 0x3A11, |_case, rng| {
        let k = rng.gen_range(1..8usize);
        let reqs = arrivals(rng, 5_000, 300, 100);
        let mut m = MultiServer::new(k);
        let mut total_service = Time::ZERO;
        let mut makespan = Time::ZERO;
        for &(at, dur) in &reqs {
            let g = m.offer(Time::from_ns(at), Time::from_ns(dur));
            assert!(g.start >= Time::from_ns(at));
            total_service += Time::from_ns(dur);
            makespan = makespan.max(g.done);
        }
        assert_eq!(m.busy_time(), total_service);
        let util = m.utilization(makespan);
        assert!(util <= 1.0 + 1e-9, "utilization {util}");
    });
}

/// Event queue pops in (time, insertion) order for arbitrary input.
#[test]
fn event_queue_total_order() {
    cases(CASES, 0x0EDE, |_case, rng| {
        let len = rng.gen_range(1..300usize);
        let mut q = EventQueue::new();
        for i in 0..len {
            q.schedule(Time::from_ns(rng.gen_range(0..1_000u64)), i);
        }
        let mut last: Option<(Time, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    });
}

/// Merging summaries in any split equals the single-stream summary.
#[test]
fn summary_merge_split_invariant() {
    cases(CASES, 0x5123, |_case, rng| {
        let len = rng.gen_range(2..200usize);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let cut = rng.gen_range(0..len + 1);
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..cut].iter().for_each(|&x| a.record(x));
        xs[cut..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    });
}

/// Histogram quantiles are monotone in q and bracket min/max.
#[test]
fn histogram_quantiles_monotone() {
    cases(CASES, 0x4157, |_case, rng| {
        let len = rng.gen_range(1..200usize);
        let samples: Vec<u64> = (0..len).map(|_| rng.gen_range(1..1_000_000u64)).collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(Time::from_ps(s));
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q25 <= q50 && q50 <= q99);
        let max = *samples.iter().max().unwrap();
        // The top quantile's bucket upper bound is at least the max sample.
        assert!(h.quantile(1.0) >= Time::from_ps(max));
    });
}

/// Link: completion is monotone in arrival for equal sizes, and the
/// transfer time scales linearly with bytes.
#[test]
fn link_monotone_and_linear() {
    cases(CASES, 0x117C, |_case, rng| {
        let bw = rng.gen_range(1_000_000..100_000_000_000u64);
        let nsizes = rng.gen_range(1..50usize);
        let mut l = Link::new(bw, Time::from_ns(10));
        let mut last = Time::ZERO;
        let mut at = Time::ZERO;
        for _ in 0..nsizes {
            let s = rng.gen_range(1..100_000u64);
            let done = l.send(at, s);
            assert!(done >= last, "completion must be monotone");
            last = done;
            at += Time::from_ns(1);
        }
        // Linearity of occupancy within fixed-point resolution.
        let one = l.occupancy(1000).ps() as i128;
        let ten = l.occupancy(10_000).ps() as i128;
        assert!(
            (ten - 10 * one).abs() <= 10,
            "occupancy not linear: {one} vs {ten}"
        );
    });
}

/// Equal-time events pop in insertion order (FIFO) on both backends,
/// even when scheduling interleaves with popping.
#[test]
fn event_queue_equal_time_fifo_both_backends() {
    for heap in [false, true] {
        cases(CASES, 0xF1F0_0EDE, |_case, rng| {
            let mut q = if heap {
                EventQueue::heap_backed()
            } else {
                EventQueue::new()
            };
            // A handful of times, many events per time, scheduled in
            // random order; per-time pop order must follow insertion.
            let times: Vec<Time> = (0..4u64)
                .map(|k| Time::from_ns(100 * k + rng.gen_range(0..50u64)))
                .collect();
            let n = rng.gen_range(20..200usize);
            let mut expect_per_time = vec![Vec::new(); times.len()];
            for i in 0..n {
                let which = rng.gen_range(0..times.len());
                q.schedule(times[which], i);
                expect_per_time[which].push(i);
            }
            let mut got_per_time = vec![Vec::new(); times.len()];
            while let Some((t, i)) = q.pop() {
                let which = times.iter().position(|&x| x == t).unwrap();
                got_per_time[which].push(i);
            }
            assert_eq!(got_per_time, expect_per_time, "FIFO violated (heap={heap})");
        });
    }
}

/// The calendar-queue backend and the reference heap backend produce
/// identical event sequences on randomized schedules, including
/// interleaved schedule/pop traffic and far-future (overflow) events.
#[test]
fn event_queue_backends_are_equivalent() {
    cases(CASES, 0xCA1E_0DA2, |_case, rng| {
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::heap_backed();
        let ops = rng.gen_range(50..500usize);
        let mut next_id = 0usize;
        for _ in 0..ops {
            if rng.gen_range(0..3u32) < 2 {
                // Mix near-future (in-window) and far-future (overflow)
                // deltas; u64 ps resolution exercises sub-bucket ties.
                let delta = if rng.gen_range(0..8u32) == 0 {
                    rng.gen_range(0..100_000_000u64)
                } else {
                    rng.gen_range(0..20_000u64)
                };
                cal.schedule_after(Time::from_ps(delta), next_id);
                heap.schedule_after(Time::from_ps(delta), next_id);
                next_id += 1;
            } else {
                assert_eq!(cal.pop(), heap.pop(), "pop diverged");
                assert_eq!(cal.now(), heap.now());
            }
            assert_eq!(cal.len(), heap.len());
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    });
}
