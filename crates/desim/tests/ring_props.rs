//! Seeded cross-thread property tests for the SPSC exchange fabric.
//!
//! The engine's determinism story leans on two `EdgeRings` guarantees:
//! every posted message is delivered exactly once, and delivery order
//! (which is intentionally unspecified across rings and spills) can be
//! re-established by sorting on an intrinsic key. These properties are
//! exercised here under real thread interleavings — random worker
//! counts, random per-window fan-out, rings sized small enough that the
//! overflow spill path is constantly hot.

use desim::pdes::GATE_DIRTY;
use desim::{EdgeRings, EpochGate, SpinBarrier};
use test_support::cases;

/// One message: `(key, src, dst)` where `key` is globally unique so a
/// sort recovers a canonical order and duplicates are detectable.
type Msg = (u64, usize, usize);

#[test]
fn every_message_is_delivered_exactly_once_in_key_order() {
    cases(24, 0x51C0, |case, rng| {
        let workers = 2 + rng.gen_below(7) as usize; // 2..=8
        let windows = 1 + rng.gen_below(6) as usize;
        // Tiny capacities keep the spill path hot in about half the
        // cases; larger ones exercise the pure ring path.
        let capacity = 1 << rng.gen_below(5); // 1..16 (min-clamped to 2)
        let rings: EdgeRings<Msg> = EdgeRings::new(workers, capacity);
        let barrier = SpinBarrier::new(workers);

        // Pre-plan every worker's sends so expectations are computable
        // without cross-thread coordination: sends[w][window] is a list
        // of (key, dst). Keys are unique by construction.
        let mut sends: Vec<Vec<Vec<(u64, usize)>>> = vec![vec![Vec::new(); windows]; workers];
        let mut key = case << 32;
        for (src, per_window) in sends.iter_mut().enumerate() {
            for batch in per_window.iter_mut() {
                let n = rng.gen_below(2 * capacity as u64 + 4);
                for _ in 0..n {
                    let dst = rng.gen_below(workers as u64) as usize;
                    if dst != src {
                        batch.push((key, dst));
                        key += 1;
                    }
                }
            }
        }

        let received: Vec<std::sync::Mutex<Vec<Msg>>> = std::iter::repeat_with(Default::default)
            .take(workers)
            .collect();
        std::thread::scope(|s| {
            for (me, my_sends) in sends.iter().enumerate() {
                let rings = &rings;
                let barrier = &barrier;
                let received = &received;
                s.spawn(move || {
                    for batch in my_sends {
                        for &(key, dst) in batch {
                            rings.post(me, dst, [(key, me, dst)]);
                        }
                        rings.publish_from(me);
                        barrier.wait();
                        rings.drain_into(me, &mut received[me].lock().unwrap());
                        barrier.wait();
                    }
                });
            }
        });

        let mut got: Vec<Msg> = Vec::new();
        for (dst, inbox) in received.iter().enumerate() {
            for &msg in inbox.lock().unwrap().iter() {
                assert_eq!(msg.2, dst, "case {case}: message routed to wrong worker");
                got.push(msg);
            }
        }
        got.sort_unstable();
        let mut expect: Vec<Msg> = sends
            .iter()
            .enumerate()
            .flat_map(|(src, per_window)| {
                per_window
                    .iter()
                    .flatten()
                    .map(move |&(key, dst)| (key, src, dst))
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(
            got, expect,
            "case {case}: delivery was not exactly-once (workers={workers}, \
             capacity={capacity}, windows={windows})"
        );
    });
}

#[test]
fn overflow_spill_preserves_every_message_and_counts_them() {
    // Deterministic two-worker overflow: capacity-2 rings, bursts far
    // past capacity. drain_into's return value is what the engine feeds
    // its mailbox depth high-water mark, so it must count ring + spill.
    let rings: EdgeRings<Msg> = EdgeRings::new(2, 2);
    let barrier = SpinBarrier::new(2);
    let counts: [std::sync::Mutex<Vec<usize>>; 2] = Default::default();
    let inboxes: [std::sync::Mutex<Vec<Msg>>; 2] = Default::default();
    const BURSTS: [usize; 3] = [7, 0, 13];
    std::thread::scope(|s| {
        for me in 0..2usize {
            let rings = &rings;
            let barrier = &barrier;
            let counts = &counts;
            let inboxes = &inboxes;
            s.spawn(move || {
                let mut key = me as u64 * 1000;
                for burst in BURSTS {
                    let dst = 1 - me;
                    for _ in 0..burst {
                        rings.post(me, dst, [(key, me, dst)]);
                        key += 1;
                    }
                    rings.publish_from(me);
                    barrier.wait();
                    let inbox = &mut inboxes[me].lock().unwrap();
                    let taken = rings.drain_into(me, inbox);
                    counts[me].lock().unwrap().push(taken);
                    barrier.wait();
                }
            });
        }
    });
    for me in 0..2 {
        assert_eq!(
            *counts[me].lock().unwrap(),
            BURSTS.to_vec(),
            "per-window drain counts must see through the spill"
        );
        let mut got: Vec<u64> = inboxes[me].lock().unwrap().iter().map(|m| m.0).collect();
        got.sort_unstable();
        let base = (1 - me) as u64 * 1000;
        let expect: Vec<u64> = (base..base + BURSTS.iter().sum::<usize>() as u64).collect();
        assert_eq!(got, expect, "spill lost or duplicated a message");
    }
}

#[test]
fn gate_views_stay_identical_under_random_digests() {
    cases(16, 0x6A7E, |case, rng| {
        let workers = 2 + rng.gen_below(7) as usize; // 2..=8
        let rounds = 8 + rng.gen_below(24);
        // Pre-draw every worker's per-round digest inputs.
        let digests: Vec<Vec<(u64, Option<u64>, u64)>> = (0..workers)
            .map(|_| {
                (0..rounds)
                    .map(|_| {
                        let events = rng.gen_below(100);
                        let next = if rng.gen_below(4) == 0 {
                            None
                        } else {
                            Some(rng.gen_below(1 << 40))
                        };
                        let flags = if rng.gen_below(5) == 0 { GATE_DIRTY } else { 0 };
                        (events, next, flags)
                    })
                    .collect()
            })
            .collect();

        let gate = EpochGate::new(workers);
        let views: Vec<std::sync::Mutex<Vec<desim::GateView>>> =
            std::iter::repeat_with(Default::default)
                .take(workers)
                .collect();
        std::thread::scope(|s| {
            for (me, mine) in digests.iter().enumerate() {
                let gate = &gate;
                let views = &views;
                s.spawn(move || {
                    for (round, &(events, next, flags)) in mine.iter().enumerate() {
                        let v = gate.sync(me, round as u64, events, next, flags);
                        views[me].lock().unwrap().push(v);
                    }
                });
            }
        });

        let first = views[0].lock().unwrap().clone();
        for (round, view) in first.iter().enumerate() {
            let expect_events: u64 = digests.iter().map(|d| d[round].0).sum();
            let expect_next = digests.iter().filter_map(|d| d[round].1).min();
            assert_eq!(view.events, expect_events, "case {case} round {round}");
            assert_eq!(view.next_ps, expect_next, "case {case} round {round}");
        }
        for other in &views[1..] {
            assert_eq!(
                *other.lock().unwrap(),
                first,
                "case {case}: workers disagreed on a gate view"
            );
        }
    });
}
