//! Time-bucketed occupancy accounting, for utilization timelines.
//!
//! The analytic servers resolve queueing without events, so there is no
//! event stream to trace; instead a [`Timeline`] accumulates busy time
//! into fixed-width buckets as grants are issued, giving a utilization
//! profile over simulated time (e.g. the thread-spawn ramp of a STREAM
//! run, or the level structure of a BFS).

use crate::time::Time;

/// Busy-time accumulation over fixed-width time buckets.
#[derive(Debug, Clone)]
pub struct Timeline {
    bucket: Time,
    busy: Vec<Time>,
}

impl Timeline {
    /// A timeline with buckets of width `bucket`.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn new(bucket: Time) -> Self {
        assert!(bucket > Time::ZERO, "bucket width must be positive");
        Timeline {
            bucket,
            busy: Vec::new(),
        }
    }

    /// Bucket width.
    pub fn bucket(&self) -> Time {
        self.bucket
    }

    /// Record a busy interval `[start, start + dur)`, distributing it
    /// across the buckets it spans.
    pub fn record(&mut self, start: Time, dur: Time) {
        if dur == Time::ZERO {
            return;
        }
        let end = start + dur;
        let first = (start.ps() / self.bucket.ps()) as usize;
        let last = ((end.ps() - 1) / self.bucket.ps()) as usize;
        if self.busy.len() <= last {
            self.busy.resize(last + 1, Time::ZERO);
        }
        for b in first..=last {
            let b_start = Time::from_ps(b as u64 * self.bucket.ps());
            let b_end = b_start + self.bucket;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            self.busy[b] += overlap;
        }
    }

    /// Number of buckets with any activity recorded.
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Utilization of bucket `b` in `[0, 1]` relative to `capacity`
    /// parallel servers.
    pub fn utilization(&self, b: usize, capacity: u32) -> f64 {
        match self.busy.get(b) {
            Some(&t) => t.ps() as f64 / (self.bucket.ps() as f64 * capacity.max(1) as f64),
            None => 0.0,
        }
    }

    /// All bucket utilizations.
    pub fn profile(&self, capacity: u32) -> Vec<f64> {
        (0..self.busy.len())
            .map(|b| self.utilization(b, capacity))
            .collect()
    }

    /// A compact ASCII sparkline of the utilization profile (8 levels),
    /// resampled to at most `width` characters.
    pub fn sparkline(&self, capacity: u32, width: usize) -> String {
        const LEVELS: [char; 9] = [
            ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
            '\u{2587}', '\u{2588}',
        ];
        let profile = self.profile(capacity);
        if profile.is_empty() || width == 0 {
            return String::new();
        }
        let chunks = profile.len().div_ceil(width);
        profile
            .chunks(chunks)
            .map(|c| {
                let avg = c.iter().sum::<f64>() / c.len() as f64;
                let idx = (avg.clamp(0.0, 1.0) * 8.0).round() as usize;
                LEVELS[idx]
            })
            .collect()
    }

    /// Merge another timeline (same bucket width) into this one.
    ///
    /// # Panics
    /// Panics if bucket widths differ.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(self.bucket, other.bucket, "bucket width mismatch");
        if self.busy.len() < other.busy.len() {
            self.busy.resize(other.busy.len(), Time::ZERO);
        }
        for (a, b) in self.busy.iter_mut().zip(&other.busy) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_interval() {
        let mut t = Timeline::new(Time::from_ns(100));
        t.record(Time::from_ns(10), Time::from_ns(50));
        assert_eq!(t.len(), 1);
        assert!((t.utilization(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interval_split_across_buckets() {
        let mut t = Timeline::new(Time::from_ns(100));
        // [80, 230): 20 in bucket 0, 100 in bucket 1, 30 in bucket 2.
        t.record(Time::from_ns(80), Time::from_ns(150));
        assert_eq!(t.len(), 3);
        assert!((t.utilization(0, 1) - 0.2).abs() < 1e-12);
        assert!((t.utilization(1, 1) - 1.0).abs() < 1e-12);
        assert!((t.utilization(2, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn capacity_scales_utilization() {
        let mut t = Timeline::new(Time::from_ns(10));
        t.record(Time::ZERO, Time::from_ns(10));
        t.record(Time::ZERO, Time::from_ns(10));
        assert!((t.utilization(0, 2) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparkline_shape() {
        let mut t = Timeline::new(Time::from_ns(10));
        t.record(Time::ZERO, Time::from_ns(10)); // full
        t.record(Time::from_ns(25), Time::from_ns(5)); // half in bucket 2
        let s = t.sparkline(1, 10);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('\u{2588}'));
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn merge_adds() {
        let mut a = Timeline::new(Time::from_ns(10));
        let mut b = Timeline::new(Time::from_ns(10));
        a.record(Time::ZERO, Time::from_ns(5));
        b.record(Time::ZERO, Time::from_ns(5));
        b.record(Time::from_ns(10), Time::from_ns(10));
        a.merge(&b);
        assert!((a.utilization(0, 1) - 1.0).abs() < 1e-12);
        assert!((a.utilization(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_ignored() {
        let mut t = Timeline::new(Time::from_ns(10));
        t.record(Time::from_ns(5), Time::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_checks_width() {
        let mut a = Timeline::new(Time::from_ns(10));
        let b = Timeline::new(Time::from_ns(20));
        a.merge(&b);
    }
}
