//! Time-bucketed occupancy accounting, for utilization timelines.
//!
//! The analytic servers resolve queueing without events, so there is no
//! event stream to trace; instead a [`Timeline`] accumulates busy time
//! into fixed-width buckets as grants are issued, giving a utilization
//! profile over simulated time (e.g. the thread-spawn ramp of a STREAM
//! run, or the level structure of a BFS). A [`Gauge`] complements it for
//! step-valued quantities (queue depth, live threadlets): it tracks a
//! piecewise-constant integer signal and reduces it to a time-weighted
//! mean and peak per bucket.

use crate::time::Time;
use std::fmt;

/// Error for bucketed series constructed with a zero bucket width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroBucket;

impl fmt::Display for ZeroBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bucket width must be positive")
    }
}

impl std::error::Error for ZeroBucket {}

/// Busy-time accumulation over fixed-width time buckets.
#[derive(Debug, Clone)]
pub struct Timeline {
    bucket: Time,
    busy: Vec<Time>,
}

impl Timeline {
    /// A timeline with buckets of width `bucket`.
    pub fn new(bucket: Time) -> Result<Self, ZeroBucket> {
        if bucket == Time::ZERO {
            return Err(ZeroBucket);
        }
        Ok(Timeline {
            bucket,
            busy: Vec::new(),
        })
    }

    /// Bucket width.
    pub fn bucket(&self) -> Time {
        self.bucket
    }

    /// Record a busy interval `[start, start + dur)`, distributing it
    /// across the buckets it spans.
    pub fn record(&mut self, start: Time, dur: Time) {
        if dur == Time::ZERO {
            return;
        }
        let end = start + dur;
        let first = (start.ps() / self.bucket.ps()) as usize;
        let last = ((end.ps() - 1) / self.bucket.ps()) as usize;
        if self.busy.len() <= last {
            self.busy.resize(last + 1, Time::ZERO);
        }
        for b in first..=last {
            let b_start = Time::from_ps(b as u64 * self.bucket.ps());
            let b_end = b_start + self.bucket;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            self.busy[b] += overlap;
        }
    }

    /// Number of buckets with any activity recorded.
    pub fn len(&self) -> usize {
        self.busy.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.busy.is_empty()
    }

    /// Utilization of bucket `b` in `[0, 1]` relative to `capacity`
    /// parallel servers.
    pub fn utilization(&self, b: usize, capacity: u32) -> f64 {
        match self.busy.get(b) {
            Some(&t) => t.ps() as f64 / (self.bucket.ps() as f64 * capacity.max(1) as f64),
            None => 0.0,
        }
    }

    /// All bucket utilizations.
    pub fn profile(&self, capacity: u32) -> Vec<f64> {
        (0..self.busy.len())
            .map(|b| self.utilization(b, capacity))
            .collect()
    }

    /// A compact ASCII sparkline of the utilization profile (8 levels),
    /// resampled to at most `width` characters.
    pub fn sparkline(&self, capacity: u32, width: usize) -> String {
        const LEVELS: [char; 9] = [
            ' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}',
            '\u{2587}', '\u{2588}',
        ];
        let profile = self.profile(capacity);
        if profile.is_empty() || width == 0 {
            return String::new();
        }
        let chunks = profile.len().div_ceil(width);
        profile
            .chunks(chunks)
            .map(|c| {
                let avg = c.iter().sum::<f64>() / c.len() as f64;
                let idx = (avg.clamp(0.0, 1.0) * 8.0).round() as usize;
                LEVELS[idx]
            })
            .collect()
    }

    /// Merge another timeline (same bucket width) into this one.
    ///
    /// # Panics
    /// Panics if bucket widths differ.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(self.bucket, other.bucket, "bucket width mismatch");
        if self.busy.len() < other.busy.len() {
            self.busy.resize(other.busy.len(), Time::ZERO);
        }
        for (a, b) in self.busy.iter_mut().zip(&other.busy) {
            *a += *b;
        }
    }
}

/// A piecewise-constant integer signal sampled into fixed-width buckets.
///
/// Call [`Gauge::set`] whenever the tracked quantity changes (the signal
/// holds its value between calls) and [`Gauge::finish`] once at the end
/// of the run to account the final plateau. Each bucket then reports the
/// time-weighted [`mean`](Gauge::mean) and the instantaneous
/// [`peak`](Gauge::peak) of the signal within it.
#[derive(Debug, Clone)]
pub struct Gauge {
    bucket: Time,
    last_t: Time,
    value: u64,
    /// Σ value·ps accumulated within each bucket.
    weighted: Vec<u64>,
    peak: Vec<u64>,
}

impl Gauge {
    /// A gauge with buckets of width `bucket`, starting at value 0.
    pub fn new(bucket: Time) -> Result<Self, ZeroBucket> {
        if bucket == Time::ZERO {
            return Err(ZeroBucket);
        }
        Ok(Gauge {
            bucket,
            last_t: Time::ZERO,
            value: 0,
            weighted: Vec::new(),
            peak: Vec::new(),
        })
    }

    /// Bucket width.
    pub fn bucket(&self) -> Time {
        self.bucket
    }

    /// Current value of the signal.
    pub fn value(&self) -> u64 {
        self.value
    }

    fn touch(&mut self, b: usize) {
        if self.weighted.len() <= b {
            self.weighted.resize(b + 1, 0);
            self.peak.resize(b + 1, 0);
        }
    }

    /// Integrate the held value forward to `now`. Out-of-order calls
    /// (`now` before the last update) are ignored rather than rewound.
    fn advance(&mut self, now: Time) {
        if now <= self.last_t {
            return;
        }
        let (start, end) = (self.last_t, now);
        let first = (start.ps() / self.bucket.ps()) as usize;
        let last = ((end.ps() - 1) / self.bucket.ps()) as usize;
        self.touch(last);
        for b in first..=last {
            let b_start = Time::from_ps(b as u64 * self.bucket.ps());
            let b_end = b_start + self.bucket;
            let overlap = end.min(b_end).saturating_sub(start.max(b_start));
            self.weighted[b] += self.value * overlap.ps();
            self.peak[b] = self.peak[b].max(self.value);
        }
        self.last_t = now;
    }

    /// The signal takes value `v` at time `now` (holding its previous
    /// value over `[last update, now)`).
    pub fn set(&mut self, now: Time, v: u64) {
        self.advance(now);
        self.value = v;
        let b = (now.ps() / self.bucket.ps()) as usize;
        self.touch(b);
        self.peak[b] = self.peak[b].max(v);
    }

    /// Account the final plateau up to `now` (end of run).
    pub fn finish(&mut self, now: Time) {
        self.advance(now);
    }

    /// Number of buckets covered.
    pub fn len(&self) -> usize {
        self.weighted.len()
    }

    /// Whether the gauge never advanced.
    pub fn is_empty(&self) -> bool {
        self.weighted.is_empty()
    }

    /// Time-weighted mean of the signal within bucket `b`.
    pub fn mean(&self, b: usize) -> f64 {
        match self.weighted.get(b) {
            Some(&w) => w as f64 / self.bucket.ps() as f64,
            None => 0.0,
        }
    }

    /// Peak instantaneous value observed within bucket `b`.
    pub fn peak(&self, b: usize) -> u64 {
        self.peak.get(b).copied().unwrap_or(0)
    }

    /// All bucket means.
    pub fn means(&self) -> Vec<f64> {
        (0..self.len()).map(|b| self.mean(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl(bucket: Time) -> Timeline {
        Timeline::new(bucket).unwrap()
    }

    #[test]
    fn zero_bucket_is_an_error_not_a_panic() {
        assert_eq!(Timeline::new(Time::ZERO).unwrap_err(), ZeroBucket);
        assert_eq!(Gauge::new(Time::ZERO).unwrap_err(), ZeroBucket);
        assert_eq!(format!("{ZeroBucket}"), "bucket width must be positive");
    }

    #[test]
    fn single_bucket_interval() {
        let mut t = tl(Time::from_ns(100));
        t.record(Time::from_ns(10), Time::from_ns(50));
        assert_eq!(t.len(), 1);
        assert!((t.utilization(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interval_split_across_buckets() {
        let mut t = tl(Time::from_ns(100));
        // [80, 230): 20 in bucket 0, 100 in bucket 1, 30 in bucket 2.
        t.record(Time::from_ns(80), Time::from_ns(150));
        assert_eq!(t.len(), 3);
        assert!((t.utilization(0, 1) - 0.2).abs() < 1e-12);
        assert!((t.utilization(1, 1) - 1.0).abs() < 1e-12);
        assert!((t.utilization(2, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn capacity_scales_utilization() {
        let mut t = tl(Time::from_ns(10));
        t.record(Time::ZERO, Time::from_ns(10));
        t.record(Time::ZERO, Time::from_ns(10));
        assert!((t.utilization(0, 2) - 1.0).abs() < 1e-12);
        assert!((t.utilization(0, 4) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparkline_shape() {
        let mut t = tl(Time::from_ns(10));
        t.record(Time::ZERO, Time::from_ns(10)); // full
        t.record(Time::from_ns(25), Time::from_ns(5)); // half in bucket 2
        let s = t.sparkline(1, 10);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next(), Some('\u{2588}'));
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn merge_adds() {
        let mut a = tl(Time::from_ns(10));
        let mut b = tl(Time::from_ns(10));
        a.record(Time::ZERO, Time::from_ns(5));
        b.record(Time::ZERO, Time::from_ns(5));
        b.record(Time::from_ns(10), Time::from_ns(10));
        a.merge(&b);
        assert!((a.utilization(0, 1) - 1.0).abs() < 1e-12);
        assert!((a.utilization(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_ignored() {
        let mut t = tl(Time::from_ns(10));
        t.record(Time::from_ns(5), Time::ZERO);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "bucket width mismatch")]
    fn merge_checks_width() {
        let mut a = tl(Time::from_ns(10));
        let b = tl(Time::from_ns(20));
        a.merge(&b);
    }

    #[test]
    fn gauge_time_weighted_mean() {
        let mut g = Gauge::new(Time::from_ns(100)).unwrap();
        g.set(Time::ZERO, 4);
        g.set(Time::from_ns(50), 2); // 4 for 50 ns, then 2
        g.finish(Time::from_ns(100));
        assert_eq!(g.len(), 1);
        assert!((g.mean(0) - 3.0).abs() < 1e-12);
        assert_eq!(g.peak(0), 4);
    }

    #[test]
    fn gauge_holds_value_across_buckets() {
        let mut g = Gauge::new(Time::from_ns(10)).unwrap();
        g.set(Time::from_ns(5), 6);
        g.finish(Time::from_ns(35)); // 6 held over [5, 35)
        assert_eq!(g.len(), 4);
        assert!((g.mean(0) - 3.0).abs() < 1e-12);
        assert!((g.mean(1) - 6.0).abs() < 1e-12);
        assert!((g.mean(2) - 6.0).abs() < 1e-12);
        assert!((g.mean(3) - 3.0).abs() < 1e-12);
        assert_eq!(g.peak(3), 6);
    }

    #[test]
    fn gauge_peak_sees_spikes_shorter_than_a_bucket() {
        let mut g = Gauge::new(Time::from_ns(100)).unwrap();
        g.set(Time::from_ns(10), 9);
        g.set(Time::from_ns(11), 1); // 9 lives for only 1 ns
        g.finish(Time::from_ns(100));
        assert_eq!(g.peak(0), 9);
        assert!(g.mean(0) < 2.0);
    }

    #[test]
    fn gauge_out_of_order_set_is_ignored_not_rewound() {
        let mut g = Gauge::new(Time::from_ns(10)).unwrap();
        g.set(Time::from_ns(20), 5);
        g.set(Time::from_ns(10), 7); // stale: does not rewind last_t
        g.finish(Time::from_ns(30));
        assert!((g.mean(2) - 7.0).abs() < 1e-12);
    }
}
