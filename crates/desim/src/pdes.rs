//! Primitives for conservative parallel discrete-event simulation.
//!
//! A conservative PDES run shards the simulated machine across a fixed
//! worker pool and advances time in *epochs*: windows of simulated time
//! no wider than the minimum cross-shard latency (the *lookahead*).
//! Within an epoch every worker drains its own event queue without
//! synchronization — conservatism guarantees no other shard can inject
//! an event into the window — and cross-shard events are buffered into
//! per-worker [`Mailboxes`] that are exchanged at a [`SpinBarrier`]
//! between windows.
//!
//! These two pieces are deliberately tiny and engine-agnostic: the
//! engine decides what an event is, how to route it, and how wide the
//! window may be; this module only supplies the deterministic exchange
//! machinery. Determinism comes from the *engine-side* discipline of
//! keying every event with an intrinsic `(time, key)` pair (see
//! [`EventQueue::schedule_keyed`](crate::EventQueue::schedule_keyed)),
//! so nothing here needs to care about arrival order: mailbox contents
//! are re-sorted into the destination queue by key on delivery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A reusable sense-reversing spin barrier for a fixed set of workers.
///
/// Epoch loops hit the barrier twice per window, so parking threads in
/// the kernel on every crossing would dominate short epochs. Arrivals
/// spin briefly and then yield, which keeps the exchange cheap when all
/// workers are hot without burning a core when one straggles.
///
/// The barrier is reusable: sense reversal lets the same object carry
/// every epoch of a run without re-initialization.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    /// Generation counter; waiters leave once it moves past theirs.
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier releasing once `parties` workers arrive.
    ///
    /// # Panics
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Block until all parties have arrived. Returns `true` for exactly
    /// one arrival per crossing (the last one in), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Leader: reset the arrival count, then release everyone by
            // bumping the generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        false
    }
}

/// Per-destination buffers for cross-shard event exchange.
///
/// One slot per worker; senders [`post`](Mailboxes::post) into the
/// destination's slot during a window, and the destination
/// [`drain`](Mailboxes::drain)s its own slot after the barrier. The
/// per-slot mutexes are uncontended in the common case (each sender
/// touches a given slot at most a handful of times per window) and the
/// barrier between post and drain gives the happens-before edge, so the
/// structure is deliberately simple.
#[derive(Debug)]
pub struct Mailboxes<M> {
    slots: Vec<Mutex<Vec<M>>>,
}

impl<M> Mailboxes<M> {
    /// Mailboxes for `workers` destinations.
    pub fn new(workers: usize) -> Self {
        Mailboxes {
            slots: std::iter::repeat_with(|| Mutex::new(Vec::new()))
                .take(workers)
                .collect(),
        }
    }

    /// Number of destination slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no destination slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Append `msgs` to destination `dest`'s slot.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or the slot mutex is poisoned.
    pub fn post(&self, dest: usize, msgs: impl IntoIterator<Item = M>) {
        let mut slot = self.slots[dest].lock().expect("mailbox poisoned");
        slot.extend(msgs);
    }

    /// Take everything currently posted to destination `dest`.
    ///
    /// Delivery order is whatever arrival order the senders raced into;
    /// callers re-establish determinism by re-sorting into their event
    /// queue under intrinsic `(time, key)` ordering.
    ///
    /// # Panics
    /// Panics if `dest` is out of range or the slot mutex is poisoned.
    pub fn drain(&self, dest: usize) -> Vec<M> {
        let mut slot = self.slots[dest].lock().expect("mailbox poisoned");
        std::mem::take(&mut *slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn barrier_releases_all_parties_with_one_leader() {
        let barrier = SpinBarrier::new(4);
        let leaders = AtomicU64::new(0);
        let after = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        after.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
        assert_eq!(after.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn barrier_separates_phases() {
        // Classic lockstep check: with a barrier between increments, no
        // worker can be a full phase ahead of another.
        let barrier = SpinBarrier::new(3);
        let phase = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        std::thread::scope(|s| {
            for (me, p) in phase.iter().enumerate() {
                let phase = &phase;
                let barrier = &barrier;
                s.spawn(move || {
                    for round in 0..50u64 {
                        p.store(round + 1, Ordering::SeqCst);
                        barrier.wait();
                        for (other, q) in phase.iter().enumerate() {
                            if other != me {
                                let v = q.load(Ordering::SeqCst);
                                assert!(
                                    v == round + 1 || v == round + 2,
                                    "worker {other} at phase {v} while {me} is at {}",
                                    round + 1
                                );
                            }
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn mailboxes_round_trip_across_threads() {
        let boxes: Mailboxes<(usize, u64)> = Mailboxes::new(3);
        let barrier = SpinBarrier::new(3);
        std::thread::scope(|s| {
            for me in 0..3usize {
                let boxes = &boxes;
                let barrier = &barrier;
                s.spawn(move || {
                    // Everyone posts one message to everyone else.
                    for dest in 0..3 {
                        if dest != me {
                            boxes.post(dest, [(me, 100 + me as u64)]);
                        }
                    }
                    barrier.wait();
                    let mut got = boxes.drain(me);
                    got.sort_unstable();
                    let expect: Vec<_> = (0..3)
                        .filter(|&o| o != me)
                        .map(|o| (o, 100 + o as u64))
                        .collect();
                    assert_eq!(got, expect);
                });
            }
        });
    }

    #[test]
    fn drain_empties_the_slot() {
        let boxes: Mailboxes<u32> = Mailboxes::new(2);
        assert_eq!(boxes.len(), 2);
        assert!(!boxes.is_empty());
        boxes.post(1, [7, 8]);
        assert_eq!(boxes.drain(1), vec![7, 8]);
        assert!(boxes.drain(1).is_empty());
        assert!(boxes.drain(0).is_empty());
    }
}
