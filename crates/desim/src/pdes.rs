//! Primitives for conservative parallel discrete-event simulation.
//!
//! A conservative PDES run shards the simulated machine across a fixed
//! worker pool and advances time in *epochs*: windows of simulated time
//! no wider than the minimum cross-shard latency (the *lookahead*).
//! Within an epoch every worker drains its own event queue without
//! synchronization — conservatism guarantees no other shard can inject
//! an event into the window — and cross-shard events travel through
//! per-edge [`EdgeRings`] that are published at window end and drained
//! after the next synchronization point.
//!
//! Three synchronization primitives live here, all engine-agnostic:
//!
//! * [`SpinBarrier`] — a reusable sense-reversing barrier that spins
//!   briefly and then *parks* on a condvar, so a straggling worker does
//!   not cost a burning core on an oversubscribed host;
//! * [`EdgeRings`] — one fixed-capacity lock-free SPSC ring per
//!   (producer, consumer) worker pair with batched release-publish, so
//!   the exchange path takes zero locks in the common case (a mutexed
//!   spill vector catches overflow without losing messages);
//! * [`EpochGate`] — a phased aggregate-and-decide point that costs a
//!   single atomic round trip per window: every worker publishes its
//!   window digest (event count, next timestamp, flag bits), bumps one
//!   shared commitment counter, and reads back the identical global
//!   digest. Windows in which nobody posted cross-shard mail can be
//!   *fused* — committed through the gate alone, with no barrier and no
//!   ring drain — which is the common all-local case.
//!
//! Determinism still comes from the *engine-side* discipline of keying
//! every event with an intrinsic `(time, key)` pair (see
//! [`EventQueue::schedule_keyed`](crate::EventQueue::schedule_keyed)),
//! so nothing here needs to care about arrival order: ring contents are
//! re-sorted into the destination queue by key on delivery.

use std::cell::{Cell, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Spin iterations before a waiter yields the CPU.
const SPIN_FAST: u32 = 64;
/// Total spin+yield iterations before a waiter parks in the kernel.
/// A hot barrier crossing completes in well under this budget; only a
/// genuine straggler (preempted worker, oversubscribed host) pushes
/// waiters past it.
const SPIN_PARK: u32 = 4096;

/// Pads a value to a cache line so producer- and consumer-owned atomics
/// never share one (false sharing would serialize the SPSC fast path).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Pad<T>(T);

/// A reusable sense-reversing barrier for a fixed set of workers.
///
/// Epoch loops cross the barrier on every non-fused window, so parking
/// in the kernel on every crossing would dominate short epochs.
/// Arrivals spin briefly, then yield, then — past a bounded budget —
/// park on a condvar until the leader releases the generation. The
/// fast path (all workers hot) never touches the mutex; the slow path
/// (one worker descheduled for milliseconds) costs the others a park
/// instead of a pegged core each.
///
/// The barrier is reusable: sense reversal lets the same object carry
/// every epoch of a run without re-initialization.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    /// Generation counter; waiters leave once it moves past theirs.
    generation: AtomicUsize,
    /// Parked-waiter rendezvous. The leader bumps `generation` while
    /// holding the lock, so a waiter that checked the generation under
    /// the same lock can never miss the notify.
    lock: Mutex<()>,
    cv: Condvar,
    parks: AtomicU64,
}

impl SpinBarrier {
    /// A barrier releasing once `parties` workers arrive.
    ///
    /// # Panics
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            parks: AtomicU64::new(0),
        }
    }

    /// Block until all parties have arrived. Returns `true` for exactly
    /// one arrival per crossing (the last one in), mirroring
    /// `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Leader: reset the arrival count, then release everyone by
            // bumping the generation — under the lock, so a waiter that
            // parked between its generation check and `Condvar::wait`
            // is still caught by the notify.
            self.arrived.store(0, Ordering::Relaxed);
            let guard = self.lock.lock().expect("barrier lock poisoned");
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            drop(guard);
            self.cv.notify_all();
            return true;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < SPIN_FAST {
                std::hint::spin_loop();
            } else if spins < SPIN_PARK {
                std::thread::yield_now();
            } else {
                self.parks.fetch_add(1, Ordering::Relaxed);
                let mut guard = self.lock.lock().expect("barrier lock poisoned");
                while self.generation.load(Ordering::Acquire) == gen {
                    guard = self.cv.wait(guard).expect("barrier lock poisoned");
                }
                break;
            }
        }
        false
    }

    /// How many waits fell through the spin budget and parked in the
    /// kernel. Diagnostic only (relaxed counter).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

/// One single-producer single-consumer ring: the edge from one worker
/// to another.
///
/// The producer stages writes with plain stores and *publishes* them in
/// a batch — one `Release` store of the tail — at window end; the
/// consumer observes the batch with one `Acquire` load. Head and tail
/// live on separate cache lines so the two sides never false-share.
/// When the ring is full the producer spills into a mutexed vector
/// instead of blocking or dropping, so a burst larger than the ring
/// capacity costs a lock but never loses a message.
///
/// # Safety contract
/// Exactly one thread may call [`push`](SpscRing::push) /
/// [`publish`](SpscRing::publish) and exactly one thread may call
/// [`drain_into`](SpscRing::drain_into) at any time. [`EdgeRings`]
/// enforces this by construction: worker *s* owns the producer side of
/// every `(s, *)` ring and the consumer side of every `(*, s)` ring.
pub struct SpscRing<M> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<M>>]>,
    /// Consumer position: next slot to read. Written by the consumer
    /// (`Release`), read by the producer (`Acquire`) for the full check.
    head: Pad<AtomicUsize>,
    /// Published producer position: slots below it are visible to the
    /// consumer. Written by `publish` (`Release`).
    tail: Pad<AtomicUsize>,
    /// Producer-private staging position (`staged >= tail`); pushes land
    /// here and become visible only at the next `publish`.
    staged: Cell<usize>,
    /// Overflow: messages that arrived while the ring was full.
    spill: Mutex<Vec<M>>,
}

// SAFETY: the single-producer/single-consumer contract documented on
// the type (and enforced by `EdgeRings`' ownership pattern) means
// `staged` is only ever touched by the one producer thread and each
// `buf` slot is written by the producer strictly before the Release
// publish that lets the consumer read it.
unsafe impl<M: Send> Sync for SpscRing<M> {}

impl<M> SpscRing<M> {
    /// A ring holding up to `capacity` unpublished-or-undrained
    /// messages (rounded up to a power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        SpscRing {
            mask: cap - 1,
            buf: std::iter::repeat_with(|| UnsafeCell::new(MaybeUninit::uninit()))
                .take(cap)
                .collect(),
            head: Pad(AtomicUsize::new(0)),
            tail: Pad(AtomicUsize::new(0)),
            staged: Cell::new(0),
            spill: Mutex::new(Vec::new()),
        }
    }

    /// Usable capacity.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Producer: stage one message. Falls back to the spill vector when
    /// the ring is full; either way the message is delivered by the
    /// next [`drain_into`](SpscRing::drain_into) that follows a
    /// [`publish`](SpscRing::publish).
    pub fn push(&self, msg: M) {
        let pos = self.staged.get();
        if pos.wrapping_sub(self.head.0.load(Ordering::Acquire)) > self.mask {
            self.spill.lock().expect("ring spill poisoned").push(msg);
            return;
        }
        // SAFETY: `pos` is at most `mask` slots ahead of `head`, so the
        // consumer has retired this slot; only this producer writes it.
        unsafe { (*self.buf[pos & self.mask].get()).write(msg) };
        self.staged.set(pos.wrapping_add(1));
    }

    /// Producer: make every staged message visible to the consumer.
    /// This is the ring's only Release store — the batch boundary.
    pub fn publish(&self) {
        self.tail.0.store(self.staged.get(), Ordering::Release);
    }

    /// Consumer: move every published message (ring, then spill) into
    /// `out`; returns how many were taken. Delivery order within a ring
    /// is FIFO but callers must not rely on cross-ring or spill order —
    /// determinism is re-established downstream by intrinsic-key sort.
    pub fn drain_into(&self, out: &mut Vec<M>) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let mut head = self.head.0.load(Ordering::Relaxed);
        let mut taken = 0usize;
        while head != tail {
            // SAFETY: slots in `head..tail` were fully written before
            // the Release publish we Acquired above; each is read once.
            let msg = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
            out.push(msg);
            taken += 1;
            head = head.wrapping_add(1);
        }
        self.head.0.store(head, Ordering::Release);
        let mut spill = self.spill.lock().expect("ring spill poisoned");
        taken += spill.len();
        out.append(&mut spill);
        taken
    }
}

impl<M> Drop for SpscRing<M> {
    fn drop(&mut self) {
        // Drain staged-but-unpublished slots too: `&mut self` proves
        // exclusive access, so `staged` is the true end of live data.
        let end = self.staged.get();
        let mut head = self.head.0.load(Ordering::Relaxed);
        while head != end {
            // SAFETY: exclusive access; slots in `head..staged` hold
            // initialized messages nobody else will read.
            unsafe { (*self.buf[head & self.mask].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

impl<M> std::fmt::Debug for SpscRing<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("capacity", &self.capacity())
            .field("head", &self.head.0.load(Ordering::Relaxed))
            .field("tail", &self.tail.0.load(Ordering::Relaxed))
            .finish()
    }
}

/// The full worker-to-worker exchange fabric: one [`SpscRing`] per
/// ordered (src, dst) pair.
///
/// Worker *s* owns the producer side of row *s* (all
/// [`post`](EdgeRings::post)s and the batched
/// [`publish_from`](EdgeRings::publish_from)) and the consumer side of
/// column *s* ([`drain_into`](EdgeRings::drain_into)); as long as each
/// worker index is driven by one thread, every ring sees exactly one
/// producer and one consumer and the whole exchange is lock-free off
/// the spill path. A synchronization point ([`SpinBarrier`] or
/// [`EpochGate`]) between publish and drain keeps delivery batched per
/// window; the rings' own Release/Acquire pair carries the data.
#[derive(Debug)]
pub struct EdgeRings<M> {
    workers: usize,
    /// Row-major: `rings[src * workers + dst]`.
    rings: Vec<SpscRing<M>>,
}

impl<M> EdgeRings<M> {
    /// Rings for `workers` workers, each holding `capacity` messages
    /// before spilling.
    pub fn new(workers: usize, capacity: usize) -> Self {
        EdgeRings {
            workers,
            rings: std::iter::repeat_with(|| SpscRing::new(capacity))
                .take(workers * workers)
                .collect(),
        }
    }

    /// Number of workers the fabric connects.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the fabric connects no workers.
    pub fn is_empty(&self) -> bool {
        self.workers == 0
    }

    /// Producer side: stage `msgs` on the `src → dst` edge. Only worker
    /// `src`'s thread may call this.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is out of range.
    pub fn post(&self, src: usize, dst: usize, msgs: impl IntoIterator<Item = M>) {
        assert!(
            src < self.workers && dst < self.workers,
            "edge out of range"
        );
        let ring = &self.rings[src * self.workers + dst];
        for m in msgs {
            ring.push(m);
        }
    }

    /// Producer side: publish everything worker `src` staged this
    /// window, one Release store per outgoing edge.
    pub fn publish_from(&self, src: usize) {
        for dst in 0..self.workers {
            self.rings[src * self.workers + dst].publish();
        }
    }

    /// Consumer side: move every published message addressed to `dst`
    /// into `out` (source rows in ascending order, spill after ring per
    /// row); returns the total taken. Only worker `dst`'s thread may
    /// call this.
    pub fn drain_into(&self, dst: usize, out: &mut Vec<M>) -> usize {
        let mut taken = 0usize;
        for src in 0..self.workers {
            taken += self.rings[src * self.workers + dst].drain_into(out);
        }
        taken
    }
}

/// Flag bit in an [`EpochGate`] digest: the worker hit an error.
pub const GATE_ERROR: u64 = 1;
/// Flag bit in an [`EpochGate`] digest: the worker posted cross-shard
/// mail this window (the window is *dirty* and needs a delivery pass).
pub const GATE_DIRTY: u64 = 2;

/// The aggregated digest every worker reads back from an
/// [`EpochGate::sync`]: identical on all workers for a given round, so
/// each can take the same scheduling decision without a leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateView {
    /// Sum of all workers' `events` contributions.
    pub events: u64,
    /// Minimum of all workers' `next_ps` proposals (`None` when every
    /// worker reported none — all queues idle).
    pub next_ps: Option<u64>,
    /// OR of all workers' flag words ([`GATE_ERROR`] | [`GATE_DIRTY`]).
    pub flags: u64,
}

impl GateView {
    /// Whether any worker raised [`GATE_ERROR`].
    pub fn any_error(&self) -> bool {
        self.flags & GATE_ERROR != 0
    }

    /// Whether any worker raised [`GATE_DIRTY`].
    pub fn any_dirty(&self) -> bool {
        self.flags & GATE_DIRTY != 0
    }
}

/// Per-worker, per-parity digest slot. Plain relaxed stores; the
/// commitment counter's AcqRel read-modify-write chain is the only
/// happens-before edge readers need.
#[derive(Debug, Default)]
struct GateSlot {
    events: AtomicU64,
    next_ps: AtomicU64,
    flags: AtomicU64,
}

/// A phased publish-and-aggregate point: the synchronization cost of a
/// *fused* epoch window.
///
/// Where a [`SpinBarrier`] costs two crossings per window (one to
/// separate post from drain, one to agree on the next window), the gate
/// costs a single shared `fetch_add` plus a bounded wait: each worker
/// stores its window digest into its own slot, bumps the commitment
/// counter, waits for the counter to reach `(round + 1) × workers`, and
/// then reads all slots — every worker computes the identical
/// [`GateView`] and can take the identical decision with no leader and
/// no second crossing.
///
/// Slots are double-buffered by round parity: a worker can only write
/// its round-`r + 2` slot after every worker has committed round
/// `r + 1`, which in turn requires every worker to have finished
/// reading round `r` — so a slot is never overwritten while a reader
/// still needs it.
///
/// Waiters spin briefly, yield, then park; the worker whose commit
/// completes a round takes the lock and notifies, so parked waiters
/// always wake.
#[derive(Debug)]
pub struct EpochGate {
    workers: usize,
    /// `slots[worker * 2 + (round & 1)]`.
    slots: Vec<GateSlot>,
    commit: Pad<AtomicU64>,
    lock: Mutex<()>,
    cv: Condvar,
    parks: AtomicU64,
}

impl EpochGate {
    /// A gate for `workers` workers.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a gate needs at least one worker");
        EpochGate {
            workers,
            slots: std::iter::repeat_with(GateSlot::default)
                .take(workers * 2)
                .collect(),
            commit: Pad(AtomicU64::new(0)),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            parks: AtomicU64::new(0),
        }
    }

    /// Number of workers the gate synchronizes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Publish this worker's digest for `round`, wait for every worker
    /// to do the same, and return the aggregate. `round` must advance
    /// by exactly one per call per worker, in lockstep across workers
    /// (every worker's `round` sequence is identical — which the
    /// identical returned [`GateView`]s make self-sustaining).
    pub fn sync(
        &self,
        worker: usize,
        round: u64,
        events: u64,
        next_ps: Option<u64>,
        flags: u64,
    ) -> GateView {
        let parity = (round & 1) as usize;
        let slot = &self.slots[worker * 2 + parity];
        slot.events.store(events, Ordering::Relaxed);
        slot.next_ps
            .store(next_ps.unwrap_or(u64::MAX), Ordering::Relaxed);
        slot.flags.store(flags, Ordering::Relaxed);

        let target = (round + 1) * self.workers as u64;
        let prev = self.commit.0.fetch_add(1, Ordering::AcqRel);
        if prev + 1 == target {
            // This commit completed the round: wake any parked waiter.
            // Taking the lock orders the wake after any waiter's
            // check-then-wait, closing the missed-notify window.
            let guard = self.lock.lock().expect("gate lock poisoned");
            drop(guard);
            self.cv.notify_all();
        } else {
            let mut spins = 0u32;
            while self.commit.0.load(Ordering::Acquire) < target {
                spins += 1;
                if spins < SPIN_FAST {
                    std::hint::spin_loop();
                } else if spins < SPIN_PARK {
                    std::thread::yield_now();
                } else {
                    self.parks.fetch_add(1, Ordering::Relaxed);
                    let mut guard = self.lock.lock().expect("gate lock poisoned");
                    while self.commit.0.load(Ordering::Acquire) < target {
                        guard = self.cv.wait(guard).expect("gate lock poisoned");
                    }
                    break;
                }
            }
        }

        // Every worker has committed `round`; their relaxed slot stores
        // happen-before our Acquire of the commit counter (the AcqRel
        // RMW chain forms one release sequence).
        let mut view = GateView {
            events: 0,
            next_ps: None,
            flags: 0,
        };
        let mut min_next = u64::MAX;
        for w in 0..self.workers {
            let s = &self.slots[w * 2 + parity];
            view.events += s.events.load(Ordering::Relaxed);
            min_next = min_next.min(s.next_ps.load(Ordering::Relaxed));
            view.flags |= s.flags.load(Ordering::Relaxed);
        }
        if min_next != u64::MAX {
            view.next_ps = Some(min_next);
        }
        view
    }

    /// How many syncs fell through the spin budget and parked in the
    /// kernel. Diagnostic only (relaxed counter).
    pub fn parks(&self) -> u64 {
        self.parks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    #[test]
    fn barrier_releases_all_parties_with_one_leader() {
        let barrier = SpinBarrier::new(4);
        let leaders = AtomicU64::new(0);
        let after = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        after.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 100);
        assert_eq!(after.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn barrier_separates_phases() {
        // Classic lockstep check: with a barrier between increments, no
        // worker can be a full phase ahead of another.
        let barrier = SpinBarrier::new(3);
        let phase = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
        std::thread::scope(|s| {
            for (me, p) in phase.iter().enumerate() {
                let phase = &phase;
                let barrier = &barrier;
                s.spawn(move || {
                    for round in 0..50u64 {
                        p.store(round + 1, Ordering::SeqCst);
                        barrier.wait();
                        for (other, q) in phase.iter().enumerate() {
                            if other != me {
                                let v = q.load(Ordering::SeqCst);
                                assert!(
                                    v == round + 1 || v == round + 2,
                                    "worker {other} at phase {v} while {me} is at {}",
                                    round + 1
                                );
                            }
                        }
                        barrier.wait();
                    }
                });
            }
        });
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn delayed_party_parks_instead_of_spin_pegging() {
        // One party sleeps 10 ms before each crossing; the prompt party
        // must fall through its spin budget and park rather than burn a
        // core, and crossings must still count exactly once each.
        let barrier = SpinBarrier::new(2);
        let leaders = AtomicU64::new(0);
        let crossings = AtomicU64::new(0);
        std::thread::scope(|s| {
            for delayed in [false, true] {
                let barrier = &barrier;
                let leaders = &leaders;
                let crossings = &crossings;
                s.spawn(move || {
                    for _ in 0..3 {
                        if delayed {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                        crossings.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 3);
        assert_eq!(crossings.load(Ordering::Relaxed), 6);
        assert!(
            barrier.parks() >= 1,
            "a 10 ms straggler must push the waiter into the park path \
             (parks = {})",
            barrier.parks()
        );
    }

    #[test]
    fn ring_round_trips_one_batch() {
        let ring: SpscRing<u32> = SpscRing::new(8);
        for v in 0..5 {
            ring.push(v);
        }
        let mut out = Vec::new();
        // Nothing visible before publish.
        assert_eq!(ring.drain_into(&mut out), 0);
        ring.publish();
        assert_eq!(ring.drain_into(&mut out), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.drain_into(&mut out), 0);
    }

    #[test]
    fn ring_overflow_spills_without_loss() {
        let ring: SpscRing<u32> = SpscRing::new(2);
        assert_eq!(ring.capacity(), 2);
        for v in 0..10 {
            ring.push(v);
        }
        ring.publish();
        let mut out = Vec::new();
        assert_eq!(ring.drain_into(&mut out), 10);
        out.sort_unstable();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ring_drop_releases_unpublished_messages() {
        // Leak-checked indirectly: Box contents must be dropped.
        let ring: SpscRing<Box<u64>> = SpscRing::new(4);
        ring.push(Box::new(1));
        ring.push(Box::new(2));
        ring.publish();
        ring.push(Box::new(3)); // staged, never published
        drop(ring); // must not leak any of the three
    }

    #[test]
    fn edge_rings_route_all_pairs_across_threads() {
        let rings: EdgeRings<(usize, u64)> = EdgeRings::new(3, 4);
        let barrier = SpinBarrier::new(3);
        std::thread::scope(|s| {
            for me in 0..3usize {
                let rings = &rings;
                let barrier = &barrier;
                s.spawn(move || {
                    // Everyone posts one message to everyone else.
                    for dst in 0..3 {
                        if dst != me {
                            rings.post(me, dst, [(me, 100 + me as u64)]);
                        }
                    }
                    rings.publish_from(me);
                    barrier.wait();
                    let mut got = Vec::new();
                    assert_eq!(rings.drain_into(me, &mut got), 2);
                    got.sort_unstable();
                    let expect: Vec<_> = (0..3)
                        .filter(|&o| o != me)
                        .map(|o| (o, 100 + o as u64))
                        .collect();
                    assert_eq!(got, expect);
                });
            }
        });
    }

    #[test]
    fn gate_aggregates_identically_on_every_worker() {
        const W: usize = 4;
        let gate = EpochGate::new(W);
        let views: Vec<Mutex<Vec<GateView>>> = std::iter::repeat_with(|| Mutex::new(Vec::new()))
            .take(W)
            .collect();
        std::thread::scope(|s| {
            for me in 0..W {
                let gate = &gate;
                let views = &views;
                s.spawn(move || {
                    for round in 0..64u64 {
                        let next = if me == (round as usize) % W {
                            None
                        } else {
                            Some(1000 * round + me as u64)
                        };
                        let flags = if me == 0 && round % 3 == 0 {
                            GATE_DIRTY
                        } else {
                            0
                        };
                        let v = gate.sync(me, round, me as u64 + round, next, flags);
                        views[me].lock().unwrap().push(v);
                    }
                });
            }
        });
        let first = views[0].lock().unwrap().clone();
        assert_eq!(first.len(), 64);
        for (round, v) in first.iter().enumerate() {
            let round = round as u64;
            let expect_events: u64 = (0..W as u64).map(|w| w + round).sum();
            assert_eq!(v.events, expect_events);
            let expect_next = (0..W as u64)
                .filter(|&w| w != round % W as u64)
                .map(|w| 1000 * round + w)
                .min();
            assert_eq!(v.next_ps, expect_next);
            assert_eq!(v.any_dirty(), round.is_multiple_of(3));
            assert!(!v.any_error());
        }
        for other in &views[1..] {
            assert_eq!(*other.lock().unwrap(), first, "gate views diverged");
        }
    }

    #[test]
    fn gate_single_worker_is_a_passthrough() {
        let gate = EpochGate::new(1);
        for round in 0..5 {
            let v = gate.sync(0, round, 7, Some(round * 10), GATE_ERROR);
            assert_eq!(v.events, 7);
            assert_eq!(v.next_ps, Some(round * 10));
            assert!(v.any_error());
        }
    }

    #[test]
    fn gate_parked_waiter_wakes_on_straggler_commit() {
        let gate = EpochGate::new(2);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for me in 0..2usize {
                let gate = &gate;
                s.spawn(move || {
                    for round in 0..3u64 {
                        if me == 1 {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        let v = gate.sync(me, round, 1, None, 0);
                        assert_eq!(v.events, 2);
                    }
                });
            }
        });
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert!(
            gate.parks() >= 1,
            "prompt worker should park while the straggler sleeps (parks = {})",
            gate.parks()
        );
    }
}
