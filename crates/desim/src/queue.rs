//! The event queue at the heart of each discrete-event engine.
//!
//! Events are ordered by time, with insertion order (a monotonically
//! increasing sequence number) breaking ties. Deterministic tie-breaking
//! matters: several threadlets frequently become ready at the same
//! picosecond, and FIFO semantics at downstream resources depend on a
//! stable pop order.
//!
//! Two backends implement the same `(time, seq)` contract:
//!
//! * A **calendar queue** (the default): a circular array of time
//!   buckets covering a sliding window of near-future slots, a sorted
//!   spill list for the slot currently being serviced, and a binary-heap
//!   overflow list for events beyond the window. Scheduling into the
//!   window is O(1); popping sorts one slot at a time. Event-dense
//!   simulations (every engine in this workspace) spend most of their
//!   scheduler time here, so this is the hot path the whole harness
//!   rides on.
//! * A **binary heap**, kept as the reference backend for equivalence
//!   tests and as the baseline the perf gate compares against.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of calendar buckets. Power of two so slot→index is a mask.
const NUM_BUCKETS: usize = 512;
/// log2 of the bucket width in picoseconds. 2^13 ps ≈ 8.2 ns per
/// bucket, so the calendar window spans ~4.2 µs — wide enough that the
/// engines' per-op costs (tens to hundreds of ns) land in the window
/// and only genuinely far-future events (long DMA-style transfers,
/// backoff retries) take the overflow-heap path.
const WIDTH_SHIFT: u32 = 13;

/// A time-ordered queue of events of type `E`.
///
/// `E` carries whatever payload an engine needs (usually a thread id plus
/// a small action tag). Events at equal times pop in insertion order.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
    now: Time,
}

#[derive(Debug, Clone)]
enum Backend<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(Calendar<E>),
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Calendar-queue backend state.
///
/// Invariants (with `slot(t) = t.ps() >> WIDTH_SHIFT`):
/// * `sorted` holds only events of slot `cur_slot`, in descending
///   `(at, seq)` order, so the back of the vec is the next event.
/// * `buckets[s & MASK]` holds events of exactly one slot value `s` in
///   the open window `(cur_slot, cur_slot + NUM_BUCKETS)`; events for
///   the current slot go straight to `sorted`.
/// * `overflow` holds events that were beyond the window when they were
///   scheduled. The window only slides forward, so overflow events can
///   *become* near-future; `advance` always consults the overflow top,
///   which keeps them correct without eager re-bucketing.
/// * `cur_slot` never passes the slot of a pending event.
#[derive(Debug, Clone)]
struct Calendar<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Events of the current slot, descending by `(at, seq)`.
    sorted: Vec<Entry<E>>,
    /// Far-future events, as a min-heap.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Absolute (non-wrapped) slot index currently being serviced.
    cur_slot: u64,
    /// Events currently resident in `buckets`.
    bucketed: usize,
    /// Total pending events across all three stores.
    len: usize,
}

const MASK: u64 = (NUM_BUCKETS as u64) - 1;

#[inline]
fn slot_of(at: Time) -> u64 {
    at.ps() >> WIDTH_SHIFT
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: std::iter::repeat_with(Vec::new).take(NUM_BUCKETS).collect(),
            sorted: Vec::new(),
            overflow: BinaryHeap::new(),
            cur_slot: 0,
            bucketed: 0,
            len: 0,
        }
    }

    fn with_capacity(n: usize) -> Self {
        let mut c = Self::new();
        // The steady-state population spreads across the window; giving
        // every store room up front removes the mid-run reallocations
        // that dominate first-run profiles. Events land in one of three
        // places, so all three need pre-sizing: the live-slot spill
        // list, the window buckets (population / slots each), and the
        // far-future overflow heap.
        c.sorted.reserve(n.min(4096));
        c.overflow.reserve(n);
        let per_bucket = n / NUM_BUCKETS;
        if per_bucket > 0 {
            for b in &mut c.buckets {
                b.reserve(per_bucket);
            }
        }
        c
    }

    fn push(&mut self, entry: Entry<E>) {
        let s = slot_of(entry.at);
        if s == self.cur_slot {
            // Insert into the live slot keeping descending (at, seq)
            // order; the new entry has the largest seq so it lands
            // before any equal-time entry (popping after them — FIFO).
            let key = (entry.at, entry.seq);
            let idx = self.sorted.partition_point(|e| (e.at, e.seq) > key);
            self.sorted.insert(idx, entry);
        } else if s < self.cur_slot + NUM_BUCKETS as u64 {
            self.buckets[(s & MASK) as usize].push(entry);
            self.bucketed += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
        self.len += 1;
    }

    /// Move to the slot of the earliest pending event and load it into
    /// `sorted`. Caller guarantees `sorted` is empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.sorted.is_empty() && self.len > 0);
        let next_bucket_slot = if self.bucketed > 0 {
            let mut s = self.cur_slot;
            while self.buckets[(s & MASK) as usize].is_empty() {
                s += 1;
            }
            Some(s)
        } else {
            None
        };
        let next_overflow_slot = self.overflow.peek().map(|Reverse(e)| slot_of(e.at));
        self.cur_slot = match (next_bucket_slot, next_overflow_slot) {
            (Some(b), Some(o)) => b.min(o),
            (Some(b), None) => b,
            (None, Some(o)) => o,
            (None, None) => unreachable!("len > 0 with no pending events"),
        };
        let bucket = &mut self.buckets[(self.cur_slot & MASK) as usize];
        // The bucket maps to exactly this slot (see the invariants), so
        // everything in it belongs to the slot we are entering.
        self.bucketed -= bucket.len();
        self.sorted.append(bucket);
        while let Some(Reverse(e)) = self.overflow.peek() {
            if slot_of(e.at) != self.cur_slot {
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("peeked");
            self.sorted.push(e);
        }
        self.sorted
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.at, e.seq)));
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        if self.sorted.is_empty() {
            self.advance();
        }
        let e = self.sorted.pop().expect("advance loads the next slot");
        self.len -= 1;
        Some(e)
    }

    fn peek_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.sorted.last() {
            return Some(e.at);
        }
        // Cold path (no event in the live slot): min over the earliest
        // bucketed event and the overflow top. Only tests and idle-time
        // probes land here, so an O(window) scan is fine.
        let mut best: Option<Time> = self.overflow.peek().map(|Reverse(e)| e.at);
        if self.bucketed > 0 {
            let mut s = self.cur_slot;
            loop {
                let b = &self.buckets[(s & MASK) as usize];
                if !b.is_empty() {
                    let t = b.iter().map(|e| e.at).min().expect("non-empty");
                    best = Some(best.map_or(t, |o| o.min(t)));
                    break;
                }
                s += 1;
            }
        }
        best
    }

    /// `(at, seq)` of the earliest pending event without touching any
    /// state. Same store-by-store minimum as `peek_time`, but carrying
    /// the tie-break key: the overflow top is the overflow-wide minimum
    /// and the first non-empty bucket in scan order holds exactly the
    /// smallest pending slot, so comparing the two candidates by
    /// `(at, seq)` yields the global winner.
    fn peek_key(&self) -> Option<(Time, u64)> {
        if self.len == 0 {
            return None;
        }
        if let Some(e) = self.sorted.last() {
            return Some((e.at, e.seq));
        }
        let mut best: Option<(Time, u64)> = self.overflow.peek().map(|Reverse(e)| (e.at, e.seq));
        if self.bucketed > 0 {
            let mut s = self.cur_slot;
            loop {
                let b = &self.buckets[(s & MASK) as usize];
                if !b.is_empty() {
                    let k = b.iter().map(|e| (e.at, e.seq)).min().expect("non-empty");
                    best = Some(best.map_or(k, |o| o.min(k)));
                    break;
                }
                s += 1;
            }
        }
        best
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the simulation clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::new()),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// An empty queue with room for `n` pending events, so the
    /// steady-state population never reallocates mid-run.
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::with_capacity(n)),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// An empty queue on the reference binary-heap backend.
    ///
    /// Same contract, simpler structure: used by the equivalence
    /// property tests and as the baseline in the scheduler microbench.
    pub fn heap_backed() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event (the engine's "now").
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics (debug builds) if `at` is in the past — schedule-in-the-past
    /// is always an engine bug.
    pub fn schedule(&mut self, at: Time, event: E) {
        debug_assert!(at >= self.now, "scheduled event in the past");
        let entry = Entry {
            at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse(entry)),
            Backend::Calendar(c) => c.push(entry),
        }
    }

    /// Schedule `event` `delay` after now.
    pub fn schedule_after(&mut self, delay: Time, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Schedule `event` at `at` under a caller-supplied tie-break `key`
    /// instead of the queue's internal insertion counter.
    ///
    /// Sharded engines use this to make pop order a pure function of the
    /// event population: when every event carries an intrinsic key (for
    /// example `source_shard << 40 | per_source_sequence`), the order
    /// `(at, key)` does not depend on which worker inserted first, so a
    /// run merged from several queues reproduces the single-queue order
    /// exactly. Callers are responsible for key uniqueness per time; the
    /// internal counter is left untouched, so `schedule` and
    /// `schedule_keyed` should not be mixed on one queue.
    ///
    /// # Panics
    /// Panics (debug builds) if `at` is in the past.
    pub fn schedule_keyed(&mut self, at: Time, key: u64, event: E) {
        debug_assert!(at >= self.now, "scheduled event in the past");
        let entry = Entry {
            at,
            seq: key,
            event,
        };
        match &mut self.backend {
            Backend::Heap(h) => h.push(Reverse(entry)),
            Backend::Calendar(c) => c.push(entry),
        }
    }

    /// Pop the earliest event together with its tie-break key, advancing
    /// the clock to its time.
    ///
    /// The companion of [`EventQueue::schedule_keyed`]: sharded engines
    /// need the key back to merge several queues into one global
    /// `(time, key)` order.
    pub fn pop_keyed(&mut self) -> Option<(Time, u64, E)> {
        let entry = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse(e)| e),
            Backend::Calendar(c) => c.pop(),
        }?;
        debug_assert!(entry.at >= self.now, "time ran backwards");
        self.now = entry.at;
        Some((entry.at, entry.seq, entry.event))
    }

    /// Time and tie-break key of the earliest pending event, if any.
    ///
    /// Deliberately does *not* slide the calendar window: peeking must
    /// leave the queue able to accept events earlier than the peeked
    /// one (a sharded engine peeks past its epoch horizon, then
    /// delivers mailbox events that sort before what it saw). The
    /// common case (live slot non-empty) is O(1); slot boundaries pay
    /// the same window scan a pop would.
    pub fn peek_key(&self) -> Option<(Time, u64)> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse(e)| (e.at, e.seq)),
            Backend::Calendar(c) => c.peek_key(),
        }
    }

    /// Pop the earliest event, advancing the simulation clock to its time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let entry = match &mut self.backend {
            Backend::Heap(h) => h.pop().map(|Reverse(e)| e),
            Backend::Calendar(c) => c.pop(),
        }?;
        debug_assert!(entry.at >= self.now, "time ran backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        match &self.backend {
            Backend::Heap(h) => h.peek().map(|Reverse(e)| e.at),
            Backend::Calendar(c) => c.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(h) => h.len(),
            Backend::Calendar(c) => c.len,
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<EventQueue<i32>> {
        vec![EventQueue::new(), EventQueue::heap_backed()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in [
            EventQueue::new(),
            EventQueue::heap_backed(),
            EventQueue::with_capacity(16),
        ] {
            q.schedule(Time::from_ns(5), "c");
            q.schedule(Time::from_ns(1), "a");
            q.schedule(Time::from_ns(3), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        }
    }

    #[test]
    fn equal_times_pop_fifo() {
        for mut q in backends() {
            let t = Time::from_ns(7);
            for i in 0..100 {
                q.schedule(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn equal_times_pop_fifo_when_interleaved_with_pops() {
        // FIFO must hold even when new equal-time events arrive while
        // the slot is being drained (the live-slot insert path).
        for mut q in backends() {
            let t = Time::from_ns(7);
            q.schedule(t, 0);
            q.schedule(t, 1);
            assert_eq!(q.pop().map(|(_, e)| e), Some(0));
            q.schedule(t, 2);
            q.schedule(t, 3);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![1, 2, 3]);
        }
    }

    #[test]
    fn far_future_events_round_trip_through_overflow() {
        // Events beyond the calendar window take the overflow-heap path
        // and must still interleave correctly with near events.
        let window_ps = (NUM_BUCKETS as u64) << WIDTH_SHIFT;
        for mut q in backends() {
            q.schedule(Time::from_ps(10 * window_ps), 3);
            q.schedule(Time::from_ps(1), 1);
            q.schedule(Time::from_ps(2 * window_ps), 2);
            q.schedule(Time::from_ps(10 * window_ps), 4);
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        for mut q in backends() {
            q.schedule(Time::from_ns(10), 0);
            assert_eq!(q.now(), Time::ZERO);
            assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
            q.pop().unwrap();
            assert_eq!(q.now(), Time::from_ns(10));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn peek_time_sees_bucketed_and_overflow_events() {
        let window_ps = (NUM_BUCKETS as u64) << WIDTH_SHIFT;
        let mut q = EventQueue::new();
        q.schedule(Time::from_ps(3 * window_ps), ());
        assert_eq!(q.peek_time(), Some(Time::from_ps(3 * window_ps)));
        q.schedule(Time::from_ps(5 << WIDTH_SHIFT), ());
        assert_eq!(q.peek_time(), Some(Time::from_ps(5 << WIDTH_SHIFT)));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        for mut q in backends() {
            q.schedule(Time::from_ns(10), 1);
            q.pop().unwrap();
            q.schedule_after(Time::from_ns(5), 2);
            let (t, e) = q.pop().unwrap();
            assert_eq!(t, Time::from_ns(15));
            assert_eq!(e, 2);
        }
    }

    #[test]
    fn len_tracks_pending() {
        for mut q in backends() {
            assert_eq!(q.len(), 0);
            q.schedule(Time::from_ns(1), 0);
            q.schedule(Time::from_ns(2), 0);
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn with_capacity_presizes_every_store() {
        // Regression: with_capacity used to size only part of the
        // calendar, so a full-window population still reallocated
        // mid-run. Fill every store to its nominal share and check that
        // no store grew past its pre-sized capacity.
        let n = 4096;
        let mut q = EventQueue::with_capacity(n);
        let (bucket_caps, sorted_cap, overflow_cap) = match &q.backend {
            Backend::Calendar(c) => (
                c.buckets.iter().map(|b| b.capacity()).collect::<Vec<_>>(),
                c.sorted.capacity(),
                c.overflow.capacity(),
            ),
            Backend::Heap(_) => unreachable!("with_capacity is calendar-backed"),
        };
        let per_bucket = n / NUM_BUCKETS;
        assert!(bucket_caps.iter().all(|&c| c >= per_bucket));
        assert!(sorted_cap >= n.min(4096));
        assert!(overflow_cap >= n);
        // One window's worth spread evenly over the slots (slot 0 lands
        // in the spill list), plus a full population beyond the window.
        let window_ps = (NUM_BUCKETS as u64) << WIDTH_SHIFT;
        for i in 0..n {
            let slot = (i % NUM_BUCKETS) as u64;
            q.schedule(Time::from_ps(slot << WIDTH_SHIFT), i);
        }
        for i in 0..n {
            q.schedule(Time::from_ps(window_ps + i as u64), i);
        }
        match &q.backend {
            Backend::Calendar(c) => {
                for (b, &cap0) in c.buckets.iter().zip(&bucket_caps) {
                    assert_eq!(b.capacity(), cap0, "bucket reallocated");
                }
                assert_eq!(c.sorted.capacity(), sorted_cap, "spill list reallocated");
                assert_eq!(c.overflow.capacity(), overflow_cap, "overflow reallocated");
            }
            Backend::Heap(_) => unreachable!(),
        }
    }

    #[test]
    fn keyed_pop_order_is_time_then_key_on_both_backends() {
        for mut q in [
            EventQueue::new(),
            EventQueue::heap_backed(),
            EventQueue::with_capacity(8),
        ] {
            // Keys arrive out of order; pops must follow (time, key),
            // not insertion order.
            q.schedule_keyed(Time::from_ns(5), 7, "d");
            q.schedule_keyed(Time::from_ns(5), 2, "c");
            q.schedule_keyed(Time::from_ns(1), 9, "b");
            q.schedule_keyed(Time::from_ns(1), 1, "a");
            assert_eq!(q.peek_key(), Some((Time::from_ns(1), 1)));
            let order: Vec<_> = std::iter::from_fn(|| q.pop_keyed())
                .map(|(_, k, e)| (k, e))
                .collect();
            assert_eq!(
                order,
                vec![(1, "a"), (9, "b"), (2, "c"), (7, "d")],
                "keyed order diverged"
            );
            assert_eq!(q.now(), Time::from_ns(5));
        }
    }

    #[test]
    fn peek_key_sees_bucketed_and_overflow_events() {
        let window_ps = (NUM_BUCKETS as u64) << WIDTH_SHIFT;
        for make in [EventQueue::new, EventQueue::heap_backed] {
            let mut q = make();
            q.schedule_keyed(Time::from_ps(3 * window_ps), 11, ());
            assert_eq!(q.peek_key(), Some((Time::from_ps(3 * window_ps), 11)));
            q.schedule_keyed(Time::from_ps(5 << WIDTH_SHIFT), 4, ());
            assert_eq!(q.peek_key(), Some((Time::from_ps(5 << WIDTH_SHIFT), 4)));
            // Peeking must not disturb the pop order.
            assert_eq!(q.pop_keyed().map(|(_, k, _)| k), Some(4));
            assert_eq!(q.pop_keyed().map(|(_, k, _)| k), Some(11));
            assert!(q.pop_keyed().is_none());
        }
    }

    #[test]
    #[should_panic(expected = "in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }
}
