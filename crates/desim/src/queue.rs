//! The event queue at the heart of each discrete-event engine.
//!
//! Events are ordered by time, with insertion order (a monotonically
//! increasing sequence number) breaking ties. Deterministic tie-breaking
//! matters: several threadlets frequently become ready at the same
//! picosecond, and FIFO semantics at downstream resources depend on a
//! stable pop order.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events of type `E`.
///
/// `E` carries whatever payload an engine needs (usually a thread id plus
/// a small action tag). Events at equal times pop in insertion order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: Time,
}

#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the simulation clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// The time of the most recently popped event (the engine's "now").
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics (debug builds) if `at` is in the past — schedule-in-the-past
    /// is always an engine bug.
    pub fn schedule(&mut self, at: Time, event: E) {
        debug_assert!(at >= self.now, "scheduled event in the past");
        let entry = Entry {
            at,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(Reverse(entry));
    }

    /// Schedule `event` `delay` after now.
    pub fn schedule_after(&mut self, delay: Time, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the simulation clock to its time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(entry)| {
            debug_assert!(entry.at >= self.now, "time ran backwards");
            self.now = entry.at;
            (entry.at, entry.event)
        })
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(5), "c");
        q.schedule(Time::from_ns(1), "a");
        q.schedule(Time::from_ns(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        assert_eq!(q.now(), Time::ZERO);
        assert_eq!(q.peek_time(), Some(Time::from_ns(10)));
        q.pop().unwrap();
        assert_eq!(q.now(), Time::from_ns(10));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), 1);
        q.pop().unwrap();
        q.schedule_after(Time::from_ns(5), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, Time::from_ns(15));
        assert_eq!(e, 2);
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        q.schedule(Time::from_ns(1), ());
        q.schedule(Time::from_ns(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    #[cfg(debug_assertions)]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(10), ());
        q.pop();
        q.schedule(Time::from_ns(5), ());
    }
}
