//! Analytic queueing-resource models.
//!
//! The engines in this workspace drive events strictly in time order, so
//! a FIFO resource does not need its own event scheduling: it only needs
//! to remember when it next becomes free. A request arriving at `t`
//! with service time `s` starts at `max(t, next_free)` and completes at
//! `start + s`. Because callers present requests in nondecreasing arrival
//! order (guaranteed by the event queue), this is exactly an M/G/1-style
//! FIFO without the cost of extra events.

use crate::time::Time;

/// A single-server FIFO queue with utilization accounting.
///
/// Models a serially reusable resource: a memory channel, a migration
/// engine, an in-order core's issue port.
#[derive(Debug, Clone)]
pub struct FifoServer {
    next_free: Time,
    busy: Time,
    served: u64,
    queued_delay: Time,
}

/// The outcome of offering a request to a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// When service began (>= arrival time).
    pub start: Time,
    /// When service completed.
    pub done: Time,
}

impl Grant {
    /// Time spent waiting in queue before service.
    pub fn wait(&self, arrival: Time) -> Time {
        self.start.saturating_sub(arrival)
    }
}

impl FifoServer {
    /// A new, idle server.
    pub fn new() -> Self {
        FifoServer {
            next_free: Time::ZERO,
            busy: Time::ZERO,
            served: 0,
            queued_delay: Time::ZERO,
        }
    }

    /// Offer a request arriving at `arrival` needing `service` time.
    ///
    /// Callers must offer requests in nondecreasing arrival order; the
    /// engines guarantee this by construction (events pop in time order).
    pub fn offer(&mut self, arrival: Time, service: Time) -> Grant {
        let start = arrival.max(self.next_free);
        let done = start + service;
        self.next_free = done;
        self.busy += service;
        self.served += 1;
        self.queued_delay += start - arrival;
        Grant { start, done }
    }

    /// When the server next becomes idle.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Total time spent serving requests.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay over all requests, or zero if none served.
    pub fn mean_wait(&self) -> Time {
        if self.served == 0 {
            Time::ZERO
        } else {
            self.queued_delay / self.served
        }
    }

    /// Utilization over `[0, horizon]`: busy time / horizon.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy.ps() as f64 / horizon.ps() as f64
        }
    }
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

/// A bank of `k` identical servers with a shared FIFO queue.
///
/// A request goes to whichever server frees first. Used for DRAM banks,
/// multi-ported structures, and the per-nodelet Gossamer-core pool.
#[derive(Debug, Clone)]
pub struct MultiServer {
    // Sorted ascending by next-free time is unnecessary; we scan for the
    // min. k is small (<= 64) in every use, so a scan beats heap churn.
    next_free: Vec<Time>,
    busy: Time,
    served: u64,
    queued_delay: Time,
}

impl MultiServer {
    /// A bank of `k` idle servers.
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MultiServer needs at least one server");
        MultiServer {
            next_free: vec![Time::ZERO; k],
            busy: Time::ZERO,
            served: 0,
            queued_delay: Time::ZERO,
        }
    }

    /// Number of servers in the bank.
    pub fn width(&self) -> usize {
        self.next_free.len()
    }

    /// Offer a request arriving at `arrival` needing `service` time; it is
    /// dispatched to the earliest-free server.
    pub fn offer(&mut self, arrival: Time, service: Time) -> Grant {
        let (idx, _) = self
            .next_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("non-empty server bank");
        let start = arrival.max(self.next_free[idx]);
        let done = start + service;
        self.next_free[idx] = done;
        self.busy += service;
        self.served += 1;
        self.queued_delay += start - arrival;
        Grant { start, done }
    }

    /// Earliest time any server becomes free.
    pub fn earliest_free(&self) -> Time {
        self.next_free.iter().copied().min().unwrap_or(Time::ZERO)
    }

    /// Total busy time summed over all servers.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean queueing delay over all requests.
    pub fn mean_wait(&self) -> Time {
        if self.served == 0 {
            Time::ZERO
        } else {
            self.queued_delay / self.served
        }
    }

    /// Aggregate utilization over `[0, horizon]` (1.0 = all servers always busy).
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy.ps() as f64 / (horizon.ps() as f64 * self.width() as f64)
        }
    }
}

/// A bandwidth-limited pipe: requests occupy the pipe for
/// `bytes / bandwidth` and additionally experience a fixed latency.
///
/// This models links (RapidIO hops, memory buses) where occupancy and
/// latency are separable: a request completes at
/// `FIFO(arrival, occupancy) + latency`.
#[derive(Debug, Clone)]
pub struct Link {
    server: FifoServer,
    /// Picoseconds per byte, in fixed-point (ps * 2^16 per byte) to keep
    /// sub-picosecond-per-byte rates exact for fast links.
    ps_per_byte_fp: u64,
    latency: Time,
}

const FP_SHIFT: u32 = 16;

impl Link {
    /// A link with `bytes_per_sec` bandwidth and `latency` propagation delay.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64, latency: Time) -> Self {
        assert!(bytes_per_sec > 0, "zero-bandwidth link");
        // ps/byte = 1e12 / B/s, kept in 48.16 fixed point.
        let ps_per_byte_fp = ((crate::time::PS_PER_S as u128) << FP_SHIFT) / bytes_per_sec as u128;
        Link {
            server: FifoServer::new(),
            ps_per_byte_fp: ps_per_byte_fp as u64,
            latency,
        }
    }

    /// Occupancy (transfer) time for `bytes`.
    pub fn occupancy(&self, bytes: u64) -> Time {
        Time(((bytes as u128 * self.ps_per_byte_fp as u128) >> FP_SHIFT) as u64)
    }

    /// Send `bytes` at `arrival`; returns when the last byte arrives at the
    /// far end (queueing + transfer + propagation).
    pub fn send(&mut self, arrival: Time, bytes: u64) -> Time {
        let grant = self.server.offer(arrival, self.occupancy(bytes));
        grant.done + self.latency
    }

    /// Underlying FIFO for statistics.
    pub fn server(&self) -> &FifoServer {
        &self.server
    }

    /// The fixed propagation latency.
    pub fn latency(&self) -> Time {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::PS_PER_S;

    #[test]
    fn fifo_serializes_overlapping_requests() {
        let mut s = FifoServer::new();
        let g1 = s.offer(Time::from_ns(0), Time::from_ns(10));
        let g2 = s.offer(Time::from_ns(3), Time::from_ns(10));
        assert_eq!(g1.done, Time::from_ns(10));
        assert_eq!(g2.start, Time::from_ns(10));
        assert_eq!(g2.done, Time::from_ns(20));
        assert_eq!(g2.wait(Time::from_ns(3)), Time::from_ns(7));
    }

    #[test]
    fn fifo_idle_gap_not_counted_busy() {
        let mut s = FifoServer::new();
        s.offer(Time::from_ns(0), Time::from_ns(5));
        s.offer(Time::from_ns(100), Time::from_ns(5));
        assert_eq!(s.busy_time(), Time::from_ns(10));
        assert_eq!(s.served(), 2);
        let u = s.utilization(Time::from_ns(105));
        assert!((u - 10.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn multiserver_runs_k_in_parallel() {
        let mut m = MultiServer::new(2);
        let g1 = m.offer(Time::ZERO, Time::from_ns(10));
        let g2 = m.offer(Time::ZERO, Time::from_ns(10));
        let g3 = m.offer(Time::ZERO, Time::from_ns(10));
        assert_eq!(g1.done, Time::from_ns(10));
        assert_eq!(g2.done, Time::from_ns(10)); // second server
        assert_eq!(g3.start, Time::from_ns(10)); // queued behind first free
        assert_eq!(g3.done, Time::from_ns(20));
        assert_eq!(m.served(), 3);
    }

    #[test]
    fn multiserver_dispatches_to_earliest_free() {
        let mut m = MultiServer::new(2);
        m.offer(Time::ZERO, Time::from_ns(100)); // server A busy till 100
        m.offer(Time::ZERO, Time::from_ns(10)); // server B busy till 10
        let g = m.offer(Time::from_ns(10), Time::from_ns(5));
        assert_eq!(g.start, Time::from_ns(10)); // lands on B immediately
        assert_eq!(m.earliest_free(), Time::from_ns(15));
    }

    #[test]
    fn link_bandwidth_and_latency() {
        // 1 GB/s, 100 ns latency: 1000 bytes take 1 us transfer.
        let mut l = Link::new(1_000_000_000, Time::from_ns(100));
        assert_eq!(l.occupancy(1000), Time::from_ns(1000));
        let done = l.send(Time::ZERO, 1000);
        assert_eq!(done, Time::from_ns(1100));
        // Second message queues behind the first's occupancy, not latency.
        let done2 = l.send(Time::ZERO, 1000);
        assert_eq!(done2, Time::from_ns(2100));
    }

    #[test]
    fn link_high_bandwidth_is_precise() {
        // 160 GB/s: 8 bytes = 0.05 ns = 50 ps.
        let l = Link::new(160_000_000_000, Time::ZERO);
        assert_eq!(l.occupancy(8).ps(), 50);
        // One full second of bytes adds up without drift worse than fp step.
        let total = l.occupancy(160_000_000_000);
        let err = (total.ps() as i64 - PS_PER_S as i64).abs();
        assert!(err < 1_000_000, "drift {err} ps over 1 s");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_multiserver_panics() {
        let _ = MultiServer::new(0);
    }
}
