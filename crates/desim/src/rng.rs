//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the workspace (list shuffles, matrix
//! sampling, fault draws) flows through a seeded generator so that a
//! given configuration always produces the same simulation, byte for
//! byte. The generator is self-contained — SplitMix64 seeding feeding a
//! xoshiro256** core — so the workspace builds with no external crates.

/// The workspace-wide default seed. Experiments that need independent
/// trials derive per-trial seeds with [`trial_seed`].
pub const DEFAULT_SEED: u64 = 0x00E5_11C4_0C1C_2018;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Also usable as a stateless mixer: feed it a counter and take the
/// output without keeping the advanced state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Build a generator from a 64-bit seed (SplitMix64 state fill).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // xoshiro's state must not be all zero; splitmix cannot produce
        // four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng64 { s }
    }

    /// Next raw 64-bit output (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform sample from a half-open range; see [`UniformRange`] for
    /// the supported scalar types.
    pub fn gen_range<T: UniformRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

/// Scalar types [`Rng64::gen_range`] can sample uniformly.
pub trait UniformRange: Copy {
    /// Draw a uniform sample from `[lo, hi)`.
    fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for $t {
            fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + rng.gen_below((hi - lo) as u64) as $t
            }
        }
    )*};
}
impl_uniform_int!(u32, u64, usize);

impl UniformRange for f64 {
    fn sample(rng: &mut Rng64, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// A deterministic RNG from an explicit seed.
pub fn rng_from_seed(seed: u64) -> Rng64 {
    Rng64::new(seed)
}

/// Derive the seed for trial `trial` of an experiment from a base seed.
///
/// Uses SplitMix64 so adjacent trial indices yield well-separated streams.
pub fn trial_seed(base: u64, trial: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle of `xs` with a seeded generator.
pub fn shuffle_seeded<T>(xs: &mut [T], seed: u64) {
    rng_from_seed(seed).shuffle(xs);
}

/// A random permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "permutation domain too large");
    let mut p: Vec<u32> = (0..n as u32).collect();
    shuffle_seeded(&mut p, seed);
    p
}

/// `n` uniform samples from `[0, bound)`.
pub fn uniform_indices(n: usize, bound: u64, seed: u64) -> Vec<u64> {
    let mut rng = rng_from_seed(seed);
    (0..n).map(|_| rng.gen_below(bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = permutation(1000, 42);
        let b = permutation(1000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_stream() {
        let a = permutation(1000, 1);
        let b = permutation(1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut p = permutation(257, 7);
        p.sort_unstable();
        assert_eq!(p, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn trial_seeds_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|t| trial_seed(DEFAULT_SEED, t)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn uniform_indices_in_bounds() {
        let xs = uniform_indices(10_000, 37, 5);
        assert!(xs.iter().all(|&x| x < 37));
        // All residues show up for a healthy generator.
        let distinct: std::collections::HashSet<u64> = xs.into_iter().collect();
        assert_eq!(distinct.len(), 37);
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = Rng64::new(11);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng64::new(3);
        for _ in 0..1000 {
            let a = rng.gen_range(5u32..17);
            assert!((5..17).contains(&a));
            let b = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&b));
        }
    }

    #[test]
    fn gen_f64_mean_is_centered() {
        let mut rng = Rng64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
