//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the workspace (list shuffles, matrix
//! sampling) flows through a seeded generator so that a given
//! configuration always produces the same simulation, byte for byte.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The workspace-wide default seed. Experiments that need independent
/// trials derive per-trial seeds with [`trial_seed`].
pub const DEFAULT_SEED: u64 = 0x00E5_11C4_0C1C_2018;

/// A deterministic RNG from an explicit seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive the seed for trial `trial` of an experiment from a base seed.
///
/// Uses SplitMix64 so adjacent trial indices yield well-separated streams.
pub fn trial_seed(base: u64, trial: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(trial.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fisher–Yates shuffle of `xs` with a seeded generator.
pub fn shuffle_seeded<T>(xs: &mut [T], seed: u64) {
    let mut rng = rng_from_seed(seed);
    xs.shuffle(&mut rng);
}

/// A random permutation of `0..n`.
pub fn permutation(n: usize, seed: u64) -> Vec<u32> {
    assert!(n <= u32::MAX as usize, "permutation domain too large");
    let mut p: Vec<u32> = (0..n as u32).collect();
    shuffle_seeded(&mut p, seed);
    p
}

/// `n` uniform samples from `[0, bound)`.
pub fn uniform_indices(n: usize, bound: u64, seed: u64) -> Vec<u64> {
    let mut rng = rng_from_seed(seed);
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = permutation(1000, 42);
        let b = permutation(1000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_stream() {
        let a = permutation(1000, 1);
        let b = permutation(1000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut p = permutation(257, 7);
        p.sort_unstable();
        assert_eq!(p, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn trial_seeds_distinct() {
        let seeds: std::collections::HashSet<u64> =
            (0..1000).map(|t| trial_seed(DEFAULT_SEED, t)).collect();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn uniform_indices_in_bounds() {
        let xs = uniform_indices(10_000, 37, 5);
        assert!(xs.iter().all(|&x| x < 37));
        // All residues show up for a healthy generator.
        let distinct: std::collections::HashSet<u64> = xs.into_iter().collect();
        assert_eq!(distinct.len(), 37);
    }
}
