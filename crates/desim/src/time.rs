//! Integer simulated time.
//!
//! All simulators in this workspace share a single notion of time: an
//! unsigned count of **picoseconds** since the start of the simulation.
//! Integer time keeps the discrete-event engines fully deterministic
//! (no floating-point accumulation order effects) while still resolving
//! sub-cycle quantities: one cycle of the fastest clock we model
//! (DDR4-2133's 1066 MHz bus) is ~938 ps.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in picoseconds.
///
/// `Time` is also used for durations; the arithmetic operators saturate
/// neither direction — overflow panics in debug builds, as elsewhere in
/// Rust — because a simulation that runs for 2^64 ps (~213 days of
/// simulated time) is a bug, not a use case.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

impl Time {
    /// Time zero — the start of every simulation.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time, used as an "infinite" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * PS_PER_MS)
    }

    /// Construct from (possibly fractional) seconds. Rounds to nearest ps.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Time {
        debug_assert!(s >= 0.0, "negative time");
        Time((s * PS_PER_S as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn ps(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds.
    #[inline]
    pub fn ns_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time(self.0.saturating_sub(other.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Time {
    /// Human-readable display with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_S {
            write!(f, "{:.3}s", self.secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", ps as f64 / PS_PER_MS as f64)
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.us_f64())
        } else if ps >= PS_PER_NS {
            write!(f, "{:.3}ns", self.ns_f64())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}

/// A fixed-frequency clock used to convert cycle counts to `Time`.
///
/// The period is stored in integer picoseconds, so clocks whose period is
/// not an integer number of picoseconds (e.g. 150 MHz ⇒ 6666.67 ps) are
/// rounded to the nearest picosecond. The resulting frequency error is
/// below 0.01 % for every clock in this workspace, far below the
/// calibration tolerances documented in EXPERIMENTS.md.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clock {
    period_ps: u64,
}

impl Clock {
    /// A clock with the given frequency in hertz.
    ///
    /// # Panics
    /// Panics if `hz` is zero or greater than 10^12 (sub-picosecond period).
    pub fn from_hz(hz: u64) -> Clock {
        assert!(hz > 0, "zero-frequency clock");
        assert!(hz <= PS_PER_S, "clock period below 1 ps");
        Clock {
            period_ps: (PS_PER_S + hz / 2) / hz,
        }
    }

    /// A clock with the given frequency in megahertz.
    pub fn from_mhz(mhz: u64) -> Clock {
        Clock::from_hz(mhz * 1_000_000)
    }

    /// The clock period.
    #[inline]
    pub fn period(self) -> Time {
        Time(self.period_ps)
    }

    /// Duration of `n` cycles.
    #[inline]
    pub fn cycles(self, n: u64) -> Time {
        Time(self.period_ps * n)
    }

    /// Effective frequency in hertz (after period rounding).
    pub fn hz(self) -> f64 {
        PS_PER_S as f64 / self.period_ps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(Time::from_ns(3).ps(), 3_000);
        assert_eq!(Time::from_us(2).ps(), 2_000_000);
        assert_eq!(Time::from_ms(1).ps(), PS_PER_MS);
        assert_eq!(Time::from_secs_f64(1.5).ps(), 1_500_000_000_000);
        assert!((Time::from_ps(2_500).ns_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!((a + b).ps(), 14_000);
        assert_eq!((a - b).ps(), 6_000);
        assert_eq!((a * 3).ps(), 30_000);
        assert_eq!((a / 2).ps(), 5_000);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_times() {
        let total: Time = (1..=4).map(Time::from_ns).sum();
        assert_eq!(total, Time::from_ns(10));
    }

    #[test]
    fn clock_period_rounding() {
        // 150 MHz -> 6666.67 ps, rounds to 6667 ps.
        let c = Clock::from_mhz(150);
        assert_eq!(c.period().ps(), 6667);
        // Effective frequency stays within 0.01%.
        assert!((c.hz() - 150e6).abs() / 150e6 < 1e-4);
        // Exact divisors are exact.
        assert_eq!(Clock::from_mhz(500).period().ps(), 2000);
        assert_eq!(Clock::from_mhz(2600).cycles(26).ps(), 26 * 385);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Time::from_ps(12)), "12ps");
        assert_eq!(format!("{}", Time::from_ns(12)), "12.000ns");
        assert_eq!(format!("{}", Time::from_us(3)), "3.000us");
        assert_eq!(format!("{}", Time::from_ms(7)), "7.000ms");
        assert_eq!(format!("{}", Time::from_secs_f64(2.0)), "2.000s");
    }

    #[test]
    #[should_panic(expected = "zero-frequency")]
    fn zero_clock_panics() {
        let _ = Clock::from_hz(0);
    }
}
