//! Measurement primitives shared by the simulators and the harness.

use crate::time::Time;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Events per second over `elapsed`, or 0 if no time has passed.
    pub fn rate(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            0.0
        } else {
            self.0 as f64 / elapsed.secs_f64()
        }
    }
}

/// Online mean/min/max/variance of a stream of samples (Welford).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a `Time` sample in nanoseconds.
    pub fn record_time(&mut self, t: Time) {
        self.record(t.ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Unbiased sample standard deviation (0 for fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log₂-bucketed latency histogram (bucket i holds samples in
/// `[2^i, 2^(i+1))` picoseconds; bucket 0 also holds zero).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    summary: Summary,
}

impl LogHistogram {
    /// An empty histogram covering the full `u64` picosecond range.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            summary: Summary::new(),
        }
    }

    /// Record a latency sample.
    pub fn record(&mut self, t: Time) {
        let idx = if t.ps() == 0 {
            0
        } else {
            63 - t.ps().leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.summary.record_time(t);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// Underlying summary statistics (in nanoseconds).
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Raw bucket counts: bucket `i` holds samples in `[2^i, 2^(i+1))`
    /// picoseconds (bucket 0 also holds zero). For serialization.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile `q` in (0, 1], as the upper bound of the bucket
    /// containing that rank. Returns `Time::ZERO` when empty.
    pub fn quantile(&self, q: f64) -> Time {
        let total = self.count();
        if total == 0 {
            return Time::ZERO;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return Time::from_ps(upper);
            }
        }
        Time::MAX
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.summary.merge(&other.summary);
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bandwidth helper: `bytes` moved over `elapsed`, in various units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    /// Bytes per second.
    pub bytes_per_sec: f64,
}

impl Bandwidth {
    /// Compute bandwidth from a byte count and an elapsed time.
    pub fn from_bytes(bytes: u64, elapsed: Time) -> Bandwidth {
        let bps = if elapsed == Time::ZERO {
            0.0
        } else {
            bytes as f64 / elapsed.secs_f64()
        };
        Bandwidth { bytes_per_sec: bps }
    }

    /// Megabytes per second (decimal MB, as used in the paper's figures).
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes_per_sec / 1e6
    }

    /// Gigabytes per second (decimal GB).
    pub fn gb_per_sec(&self) -> f64 {
        self.bytes_per_sec / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rate() {
        let mut c = Counter::default();
        c.add(9_000_000);
        assert!((c.rate(Time::from_secs_f64(1.0)) - 9e6).abs() < 1.0);
        assert_eq!(Counter::default().rate(Time::ZERO), 0.0);
    }

    #[test]
    fn summary_mean_min_max_stddev() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Population stddev is 2; sample stddev = sqrt(32/7).
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        xs.iter().for_each(|&x| whole.record(x));
        let mut a = Summary::new();
        let mut b = Summary::new();
        xs[..37].iter().for_each(|&x| a.record(x));
        xs[37..].iter().for_each(|&x| b.record(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LogHistogram::new();
        for ns in [1u64, 2, 4, 100, 1000, 1000, 1000, 10_000] {
            h.record(Time::from_ns(ns));
        }
        assert_eq!(h.count(), 8);
        // Median (rank 4 of 8) is the 100 ns sample; the bucket upper bound
        // containing it is 2^17-1 ps ≈ 131 ns.
        let med = h.quantile(0.5);
        assert!(
            med >= Time::from_ns(100) && med <= Time::from_ns(200),
            "{med}"
        );
        // p90 (rank 8 -> wait, rank ceil(0.9*8)=8) covers the max; p0.75 the 1000 ns runs.
        let p75 = h.quantile(0.75);
        assert!(
            p75 >= Time::from_ns(1000) && p75 <= Time::from_ns(2100),
            "{p75}"
        );
        // p100 covers the max sample.
        assert!(h.quantile(1.0) >= Time::from_ns(10_000));
        assert_eq!(LogHistogram::new().quantile(0.5), Time::ZERO);
    }

    #[test]
    fn bandwidth_units() {
        let bw = Bandwidth::from_bytes(1_200_000_000, Time::from_secs_f64(1.0));
        assert!((bw.gb_per_sec() - 1.2).abs() < 1e-9);
        assert!((bw.mb_per_sec() - 1200.0).abs() < 1e-6);
        assert_eq!(Bandwidth::from_bytes(10, Time::ZERO).bytes_per_sec, 0.0);
    }
}
