//! # desim — deterministic discrete-event simulation kernel
//!
//! The shared substrate underneath both architecture models in this
//! workspace ([`emu-core`](../emu_core/index.html) and
//! [`xeon-sim`](../xeon_sim/index.html)):
//!
//! * [`time::Time`] — integer picosecond simulated time and [`time::Clock`]
//!   frequency conversion;
//! * [`queue::EventQueue`] — the time-ordered event heap with deterministic
//!   FIFO tie-breaking;
//! * [`server`] — analytic FIFO resources ([`server::FifoServer`],
//!   [`server::MultiServer`], bandwidth [`server::Link`]s) that resolve
//!   queueing without extra events;
//! * [`stats`] — counters, online summaries, log₂ latency histograms, and
//!   bandwidth reductions;
//! * [`rng`] — seeded, reproducible randomness.
//!
//! ## Design note
//!
//! Engines built on this kernel drive *agents* (threadlets, CPU threads)
//! through an [`queue::EventQueue`]; each pop re-activates one agent, which
//! pushes its next activation after routing one operation through a chain
//! of analytic servers. Because events pop in nondecreasing time order,
//! the servers see arrivals in order and FIFO semantics hold without the
//! servers scheduling events of their own — a classic "activity scanning"
//! style DES that is compact and fast.

#![warn(missing_docs)]

pub mod arena;
pub mod pdes;
pub mod queue;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;
pub mod timeline;

pub use arena::{Arena, Idx};
pub use pdes::{EdgeRings, EpochGate, GateView, SpinBarrier, SpscRing};
pub use queue::EventQueue;
pub use server::{FifoServer, Grant, Link, MultiServer};
pub use stats::{Bandwidth, Counter, LogHistogram, Summary};
pub use time::{Clock, Time};
pub use timeline::{Gauge, Timeline, ZeroBucket};
