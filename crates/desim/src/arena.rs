//! A generational slab arena for engine-owned agent state.
//!
//! Discrete-event engines carry one long-lived context per agent
//! (threadlet, CPU thread) that every event touching that agent must
//! reach. Boxing each context scatters them across the heap — every
//! event dispatch starts with a pointer chase into cold memory, and
//! every agent birth/death round-trips the allocator. An [`Arena`]
//! keeps the contexts in one flat `Vec` slab instead: events carry a
//! small [`Idx`] (slot + generation), lookups are an indexed load into
//! a contiguous slab, and dead slots are recycled through a free list
//! so steady-state churn allocates nothing.
//!
//! Generations catch use-after-free deterministically: removing a slot
//! bumps its generation, so a stale [`Idx`] held by a forgotten event
//! can never silently alias the slot's next tenant — [`Arena::get_mut`]
//! and [`Arena::remove`] return `None` for it instead.

/// Handle to one occupied arena slot: slot index plus the generation it
/// was inserted under. 8 bytes, `Copy` — cheap enough to ride inside
/// every queued event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Idx {
    slot: u32,
    gen: u32,
}

impl Idx {
    /// The raw slot number (stable for the lifetime of the entry).
    pub fn slot(self) -> u32 {
        self.slot
    }
}

#[derive(Debug)]
struct Slot<T> {
    /// Bumped on every removal; an `Idx` is live iff its generation
    /// matches the slot's current one and the value is present.
    gen: u32,
    val: Option<T>,
}

/// A flat generational arena with free-list slot reuse.
#[derive(Debug)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// An empty arena pre-sized for `n` live entries, so steady-state
    /// populations never reallocate the slab mid-run.
    pub fn with_capacity(n: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(n),
            free: Vec::with_capacity(n),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert `val`, reusing the most recently freed slot if one exists
    /// (LIFO reuse keeps the hot end of the slab hot).
    pub fn insert(&mut self, val: T) -> Idx {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.val.is_none(), "free list pointed at a live slot");
            s.val = Some(val);
            return Idx { slot, gen: s.gen };
        }
        let slot = self.slots.len() as u32;
        self.slots.push(Slot {
            gen: 0,
            val: Some(val),
        });
        Idx { slot, gen: 0 }
    }

    /// Shared access to the entry behind `idx`, if it is still live.
    pub fn get(&self, idx: Idx) -> Option<&T> {
        let s = self.slots.get(idx.slot as usize)?;
        if s.gen != idx.gen {
            return None;
        }
        s.val.as_ref()
    }

    /// Exclusive access to the entry behind `idx`, if it is still live.
    pub fn get_mut(&mut self, idx: Idx) -> Option<&mut T> {
        let s = self.slots.get_mut(idx.slot as usize)?;
        if s.gen != idx.gen {
            return None;
        }
        s.val.as_mut()
    }

    /// Clone the arena through a per-entry fallible clone function,
    /// preserving slot layout, generations, and the free list exactly:
    /// an [`Idx`] valid in `self` is valid in the clone. Returns `None`
    /// if `f` declines any live entry (engine snapshots use this to
    /// bail out when some agent state cannot be forked).
    pub fn try_clone_with(&self, mut f: impl FnMut(&T) -> Option<T>) -> Option<Arena<T>> {
        let mut slots = Vec::with_capacity(self.slots.len());
        for s in &self.slots {
            let val = match &s.val {
                Some(v) => Some(f(v)?),
                None => None,
            };
            slots.push(Slot { gen: s.gen, val });
        }
        Some(Arena {
            slots,
            free: self.free.clone(),
            live: self.live,
        })
    }

    /// Remove and return the entry behind `idx`. The slot's generation
    /// advances and the slot joins the free list, so `idx` (and any
    /// copy of it) is dead from here on.
    pub fn remove(&mut self, idx: Idx) -> Option<T> {
        let s = self.slots.get_mut(idx.slot as usize)?;
        if s.gen != idx.gen {
            return None;
        }
        let val = s.val.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(idx.slot);
        self.live -= 1;
        Some(val)
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a = Arena::new();
        let i = a.insert("x");
        let j = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(i), Some(&"x"));
        assert_eq!(a.get_mut(j).map(|v| *v), Some("y"));
        assert_eq!(a.remove(i), Some("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(i), None);
        assert_eq!(a.remove(i), None);
    }

    #[test]
    fn freed_slots_are_reused_and_generations_fence_stale_handles() {
        let mut a = Arena::with_capacity(4);
        let i = a.insert(1u32);
        a.remove(i).unwrap();
        let j = a.insert(2u32);
        // LIFO reuse: the same slot, a newer generation.
        assert_eq!(j.slot(), i.slot());
        assert_ne!(i, j);
        assert_eq!(a.get(i), None, "stale handle must not alias the reuse");
        assert_eq!(a.get(j), Some(&2));
        assert!(a.slots.len() == 1, "no new slab growth on reuse");
    }

    #[test]
    fn try_clone_with_preserves_layout_and_handles() {
        let mut a = Arena::new();
        let i = a.insert(10u32);
        let j = a.insert(20u32);
        let k = a.insert(30u32);
        a.remove(j).unwrap();
        let b = a.try_clone_with(|v| Some(*v)).expect("clone");
        // Handles from the original resolve identically in the clone,
        // including the stale one.
        assert_eq!(b.get(i), Some(&10));
        assert_eq!(b.get(j), None);
        assert_eq!(b.get(k), Some(&30));
        assert_eq!(b.len(), a.len());
        // Free-list order carries over: the next insert reuses the same
        // slot in both.
        let mut a2 = a;
        let mut b2 = b;
        assert_eq!(a2.insert(99).slot(), b2.insert(99).slot());
    }

    #[test]
    fn try_clone_with_fails_when_an_entry_declines() {
        let mut a = Arena::new();
        a.insert(1u32);
        a.insert(2u32);
        assert!(a.try_clone_with(|v| (*v != 2).then_some(*v)).is_none());
    }

    #[test]
    fn churn_allocates_no_new_slots() {
        let mut a = Arena::new();
        let mut live: Vec<Idx> = (0..16).map(|v| a.insert(v)).collect();
        let peak = a.slots.len();
        for round in 0..100u32 {
            let idx = live.remove((round as usize * 7) % live.len());
            a.remove(idx).unwrap();
            live.push(a.insert(round));
        }
        assert_eq!(a.slots.len(), peak, "steady churn grew the slab");
        assert_eq!(a.len(), 16);
    }
}
