//! The committed `scenarios/` registry and its generator must agree,
//! and the registry must keep its coverage guarantees.

use scenario::ast::*;
use std::collections::BTreeSet;
use std::path::Path;

fn scenarios_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

#[test]
fn committed_registry_matches_the_generator() {
    let dir = scenarios_dir();
    for (name, text) in scenario::registry::files() {
        let committed = std::fs::read_to_string(dir.join(&name)).unwrap_or_else(|e| {
            panic!("{name}: missing from scenarios/ ({e}); run `simctl scenario gen scenarios/`")
        });
        assert_eq!(
            committed, text,
            "{name}: committed file drifted from the generator; run `simctl scenario gen scenarios/`"
        );
    }
}

#[test]
fn every_committed_scenario_parses_and_resolves() {
    let dir = scenarios_dir();
    let mut n = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "scn") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let s = scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let points = scenario::resolve(&s).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!points.is_empty(), "{}: no points", path.display());
        n += 1;
    }
    assert!(
        n >= 200,
        "registry has {n} scenarios; the suite requires at least 200"
    );
}

#[test]
fn registry_covers_every_preset_workload_pair_and_enough_faults() {
    let scenarios = scenario::registry::generate();
    let mut pairs = BTreeSet::new();
    let mut faulty = 0;
    let mut identity = 0;
    for s in &scenarios {
        pairs.insert((s.preset.clone(), s.workload.kind));
        if !s.faults.is_empty() {
            faulty += 1;
        }
        if s.expect
            .iter()
            .any(|e| matches!(e, Expect::ByteIdentical { .. }))
        {
            identity += 1;
        }
    }
    for preset in scenario::registry::PRESETS {
        for kind in WorkloadKind::ALL {
            assert!(
                pairs.contains(&(preset.to_string(), kind)),
                "no scenario for preset {preset} x workload {}",
                kind.name()
            );
        }
    }
    assert!(
        faulty >= 20,
        "only {faulty} fault-bearing scenarios (need 20+)"
    );
    assert!(identity >= 20, "only {identity} byte-identity scenarios");
}
