//! Mutation coverage for `expect` evaluation: seed an "engine bug" by
//! tampering with real point outcomes and prove the matching assertion
//! fails. Evaluation is pure, so each tampering models exactly one
//! class of regression — a miscounted counter, a broken monotone
//! trend, a scheduler run whose report drifts with the worker count —
//! reaching the evaluator through the same data path a real bug would.

use scenario::run::PointOutcome;

fn suite_scenario() -> (scenario::Scenario, Vec<PointOutcome>) {
    let text = "\
scenario mutation-witness

machine chick

workload stream
  elems = 64
  threads = 4

sweep elems = 32, 64

expect
  counter events >= 1
  counter threads == 4
  monotonic events nondecreasing over elems
  byte_identical_at_sim_threads = 1, 2
";
    let s = scenario::parse(text).unwrap();
    let points = scenario::resolve(&s).unwrap();
    let outcomes: Vec<PointOutcome> = points.iter().map(|p| scenario::run_point(&s, p)).collect();
    (s, outcomes)
}

#[test]
fn untampered_run_passes() {
    let (s, outcomes) = suite_scenario();
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(fails.is_empty(), "{fails:#?}");
}

#[test]
fn wrong_counter_fails_the_counter_assertion() {
    let (s, mut outcomes) = suite_scenario();
    // Seeded bug: a run that loses a threadlet.
    *outcomes[0].metrics.get_mut("threads").unwrap() = 3.0;
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(
        fails.iter().any(|f| f.contains("counter threads")),
        "{fails:#?}"
    );
}

#[test]
fn missing_metric_fails_loudly() {
    let (s, mut outcomes) = suite_scenario();
    outcomes[1].metrics.remove("events");
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(
        fails.iter().any(|f| f.contains("not produced")),
        "{fails:#?}"
    );
}

#[test]
fn broken_monotonicity_fails_the_monotonic_assertion() {
    let (s, mut outcomes) = suite_scenario();
    // Seeded bug: the larger problem size reports fewer events than
    // the smaller one (e.g. dropped work on one shard).
    let small = outcomes[0].metrics["events"];
    *outcomes[1].metrics.get_mut("events").unwrap() = small - 1.0;
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(
        fails.iter().any(|f| f.contains("monotonic events")),
        "{fails:#?}"
    );
}

#[test]
fn fingerprint_drift_fails_the_byte_identity_assertion() {
    let (s, mut outcomes) = suite_scenario();
    // Seeded bug: the two-worker scheduler produces a slightly
    // different report than the sequential one.
    let (_, fp) = outcomes[0]
        .fingerprints
        .iter_mut()
        .find(|(n, _)| *n == 2)
        .unwrap();
    fp.push('x');
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(
        fails.iter().any(|f| f.contains("not byte-identical")),
        "{fails:#?}"
    );
}

#[test]
fn missing_fingerprint_fails_the_byte_identity_assertion() {
    let (s, mut outcomes) = suite_scenario();
    outcomes[1].fingerprints.retain(|(n, _)| *n != 2);
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(
        fails.iter().any(|f| f.contains("no fingerprint")),
        "{fails:#?}"
    );
}

#[test]
fn point_problems_fail_the_scenario() {
    let (s, mut outcomes) = suite_scenario();
    outcomes[0]
        .problems
        .push("audit: threadlet conservation violated".into());
    let fails = scenario::evaluate(&s, &outcomes);
    assert!(fails.iter().any(|f| f.contains("audit:")), "{fails:#?}");
}

/// The tampering above models bugs at the outcome boundary; this one
/// proves a real engine-visible divergence trips the suite end to end:
/// two different machine configurations cannot share a fingerprint.
#[test]
fn a_real_config_change_changes_the_fingerprint() {
    let (s, outcomes) = suite_scenario();
    let text = "\
scenario mutation-witness

machine chick
  gc_hz = 115000000

workload stream
  elems = 64
  threads = 4

sweep elems = 32, 64

expect
  counter events >= 1
  counter threads == 4
  monotonic events nondecreasing over elems
  byte_identical_at_sim_threads = 1, 2
";
    let s2 = scenario::parse(text).unwrap();
    let points2 = scenario::resolve(&s2).unwrap();
    let outcomes2: Vec<PointOutcome> = points2
        .iter()
        .map(|p| scenario::run_point(&s2, p))
        .collect();
    // Both pass their own suite…
    assert!(scenario::evaluate(&s, &outcomes).is_empty());
    assert!(scenario::evaluate(&s2, &outcomes2).is_empty());
    // …but the slowed clock must be visible in the fingerprints, or
    // byte-identity would be vacuously satisfiable by any report.
    assert_ne!(
        outcomes[0].fingerprints[0].1, outcomes2[0].fingerprints[0].1,
        "fingerprints must reflect the machine configuration"
    );
}
