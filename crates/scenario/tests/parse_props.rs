//! Parser properties: print→parse round trips structurally, and every
//! malformed input is rejected with a line-numbered error.

use scenario::ast::*;
use scenario::{parse, print};
use test_support::cases;

/// A random valid scenario: random preset, workload, params drawn from
/// each kind's schema, optional faults, sweep, and expects.
fn gen_random(case: u64, rng: &mut desim::rng::Rng64) -> Scenario {
    // Script scenarios come from the fuzzer's own generator.
    if rng.gen_range(0..4u32) == 0 {
        return scenario::case::gen_scenario(&format!("prop-script-{case}"), rng);
    }
    let presets = scenario::registry::PRESETS;
    let preset = presets[rng.gen_range(0..presets.len() as u32) as usize];
    let kinds = [
        WorkloadKind::Stream,
        WorkloadKind::Chase,
        WorkloadKind::Bfs,
        WorkloadKind::Mttkrp,
        WorkloadKind::Spmv,
    ];
    let kind = kinds[rng.gen_range(0..kinds.len() as u32) as usize];
    let mut text = format!("scenario prop-{case}\n\nmachine {preset}\n");
    if rng.gen_range(0..2u32) == 1 {
        text.push_str(&format!(
            "  gc_hz = {}\n",
            100_000_000 + rng.gen_range(0..8u32) as u64 * 25_000_000
        ));
    }
    text.push_str(&format!("\nworkload {}\n", kind.name()));
    match kind {
        WorkloadKind::Stream => {
            text.push_str(&format!("  elems = {}\n", 64 << rng.gen_range(0..4u32)));
            let kernels = ["add", "copy", "scale", "triad"];
            text.push_str(&format!(
                "  kernel = {}\n",
                kernels[rng.gen_range(0..4u32) as usize]
            ));
        }
        WorkloadKind::Chase => {
            text.push_str("  elems_per_list = 64\n  block = 16\n");
            text.push_str(&format!("  lists = {}\n", 1 + rng.gen_range(0..4u32)));
        }
        WorkloadKind::Bfs => {
            text.push_str(&format!(
                "  scale = {}\n  edges = 64\n",
                4 + rng.gen_range(0..3u32)
            ));
        }
        WorkloadKind::Mttkrp => {
            text.push_str(&format!(
                "  nnz = {}\n  rank = 2\n",
                16 + rng.gen_range(0..32u32)
            ));
        }
        WorkloadKind::Spmv => {
            text.push_str(&format!("  n = {}\n", 4 + rng.gen_range(0..4u32)));
            let layouts = ["local", "1d", "2d"];
            text.push_str(&format!(
                "  layout = {}\n",
                layouts[rng.gen_range(0..3u32) as usize]
            ));
        }
        WorkloadKind::Script => unreachable!(),
    }
    if rng.gen_range(0..2u32) == 1 {
        text.push_str("\nfaults\n  seed = 5\n  ecc_prob = 0.1\n  ecc_latency_ps = 50000\n");
    }
    if rng.gen_range(0..2u32) == 1 && kind == WorkloadKind::Stream {
        text.push_str("\nsweep elems = 64, 128\n");
        text.push_str("\nexpect\n  monotonic events nondecreasing over elems\n");
    } else {
        text.push_str("\nexpect\n  counter events >= 1\n  byte_identical_at_sim_threads = 1, 2\n");
    }
    parse(&text).unwrap_or_else(|e| panic!("case {case}: generated text invalid: {e}\n{text}"))
}

#[test]
fn print_parse_round_trips() {
    cases(60, 0x5C11, |case, rng| {
        let s = gen_random(case, rng);
        let text = print(&s);
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: canonical form rejected: {e}\n{text}"));
        assert_eq!(back, s, "case {case}: round trip diverged\n{text}");
        // Printing is a fixed point: print(parse(print(s))) == print(s).
        assert_eq!(print(&back), text, "case {case}: print not canonical");
    });
}

#[test]
fn registry_round_trips() {
    for s in scenario::registry::generate() {
        let text = print(&s);
        let back = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", s.name));
        assert_eq!(back, s, "{}: registry round trip diverged", s.name);
    }
}

/// Every rejection must carry `line {n}:` with the offending line.
fn rejects_at(text: &str, line: usize, needle: &str) {
    let err = parse(text).expect_err(&format!("accepted:\n{text}"));
    assert!(
        err.starts_with(&format!("line {line}:")),
        "wrong line in {err:?} (want line {line}) for:\n{text}"
    );
    assert!(
        err.contains(needle),
        "error {err:?} does not mention {needle:?}"
    );
}

#[test]
fn rejections_carry_line_numbers() {
    rejects_at(
        "scenario x\nmachine warp9\nworkload stream\n",
        2,
        "unknown preset",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\n  elemz = 4\n",
        4,
        "unknown stream parameter",
    );
    rejects_at(
        "scenario x\nmachine chick\n  frobnicate = 3\nworkload stream\n",
        3,
        "unknown key",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload quicksort\n",
        3,
        "unknown workload",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\nstray line here\n",
        4,
        "key = value",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\n\nexpect\n  counter warp >= 1\n",
        6,
        "unknown metric",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\n\nexpect\n  oracle psychic in 0.9..1.1\n",
        6,
        "unknown oracle",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\n\nexpect\n  byte_identical_at_sim_threads = 2\n",
        6,
        "at least two",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\n  elems = 8\n  elems = 9\n",
        5,
        "duplicate",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\nsweep elems = 1, 2\nsweep threads = 1, 2\nsweep kernel = add\n",
        6,
        "at most 2",
    );
    rejects_at(
        "scenario x\nmachine chick\n  fault_ecc_prob = 0.5\nworkload stream\n",
        3,
        "faults section",
    );
    rejects_at(
        "scenario x\nmachine chick\nworkload stream\n  thread = 0 C1\n",
        4,
        "script",
    );
    // Structural errors without a single offending line name the gap.
    assert!(parse("scenario x\nmachine chick\n")
        .unwrap_err()
        .contains("missing workload"));
    assert!(parse("machine chick\nworkload stream\n")
        .unwrap_err()
        .contains("scenario"));
    assert!(parse("scenario x\nmachine chick\nworkload script\n")
        .unwrap_err()
        .contains("no thread lines"));
    assert!(
        parse("scenario x\nmachine chick\nworkload stream\n\nexpect\n  monotonic events nondecreasing over elems\n")
            .unwrap_err()
            .contains("unswept axis")
    );
}

#[test]
fn semantic_validation_happens_at_parse_time() {
    // Structurally fine, semantically broken: chase geometry.
    let err =
        parse("scenario x\nmachine chick\nworkload chase\n  elems_per_list = 100\n  block = 64\n")
            .unwrap_err();
    assert!(err.contains("multiple"), "{err}");
    // BFS source outside the graph.
    let err =
        parse("scenario x\nmachine chick\nworkload bfs\n  scale = 4\n  src = 99\n").unwrap_err();
    assert!(err.contains("out of range"), "{err}");
}
