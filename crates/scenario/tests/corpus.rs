//! Potency checks on the promoted corpus exemplars: a repro that no
//! longer exercises its fault path guards nothing.

use emu_core::prelude::*;
use std::path::Path;

fn load(name: &str) -> scenario::Scenario {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../tests/corpus/{name}"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    scenario::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn committed_cross_shard_nack_scenario_exercises_the_fault_path() {
    // The corpus exemplar for the sharded scheduler must actually
    // produce cross-shard mailbox traffic and migration NACKs.
    let s = load("cross-shard-nack.scn");
    let case = scenario::case::case_from_scenario(&s).unwrap();
    let mut e = Engine::new(case.cfg.clone()).unwrap();
    e.set_sim_threads(2);
    e.enable_merge(false);
    conformance::fuzz::seed_case(&mut e, &case).unwrap();
    let report = e.run().unwrap();
    assert!(report.fault_totals().nacks > 0, "case must NACK");
    assert!(report.pdes.mailbox_sent > 0, "case must cross shards");
    assert!(report.total_migrations() > 0, "case must migrate");
    assert!(conformance::fuzz::run_case(&case).is_empty());
}

#[test]
fn promoted_corpus_runs_clean_under_the_scenario_runner() {
    for name in [
        "cross-shard-nack.scn",
        "faulty-node.scn",
        "smoke-local.scn",
        "two-node-link.scn",
    ] {
        let s = load(name);
        let outcome = scenario::run_scenario(&s);
        assert!(outcome.pass(), "{name}: {:#?}", outcome.failures);
    }
}
