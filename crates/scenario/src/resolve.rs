//! Lowering a parsed [`Scenario`] onto the engine's own types.
//!
//! [`resolve`] expands the sweep into the cartesian product of its
//! axes and, for each point, builds the concrete [`MachineConfig`]
//! (preset + machine overrides + faults + any swept machine/fault
//! axes) and a fully-typed [`ResolvedWorkload`]. All cross-key
//! constraints (chase geometry, BFS source range, …) are checked here,
//! so resolution is also the scenario's semantic validation — the
//! parser calls it on a dry run before accepting a file.

use crate::ast::*;
use conformance::fuzz::{apply_config_key, ThreadScript};
use emu_core::config::MachineConfig;
use emu_core::spawn::SpawnStrategy;
use emu_graph::bfs::BfsMode;
use emu_tensor::emu::TensorLayout;
use membench::chase::{ChaseConfig, ShuffleMode};
use membench::spmv_emu::EmuLayout;
use membench::stream::{EmuStreamConfig, StreamKernel};
use std::collections::BTreeMap;

/// One workload, fully typed and ready to run.
#[derive(Debug, Clone)]
pub enum ResolvedWorkload {
    /// STREAM with its engine config.
    Stream(EmuStreamConfig),
    /// Pointer chase with its engine config.
    Chase(ChaseConfig),
    /// BFS over an R-MAT graph.
    Bfs {
        /// R-MAT scale (vertices = `1 << scale`).
        scale: u32,
        /// Directed edge count.
        edges: usize,
        /// Graph RNG seed.
        seed: u64,
        /// Source vertex.
        src: u32,
        /// Traversal strategy.
        mode: BfsMode,
        /// Worker threadlets per level.
        threads: usize,
    },
    /// MTTKRP over a random sparse tensor.
    Mttkrp {
        /// Tensor dimensions I×J×K.
        dims: [u32; 3],
        /// Nonzero count.
        nnz: usize,
        /// CP rank.
        rank: u32,
        /// Data placement.
        layout: TensorLayout,
        /// Worker threadlets.
        threads: usize,
        /// Tensor RNG seed.
        seed: u64,
    },
    /// SpMV over the paper's 2-D Laplacian.
    Spmv {
        /// Laplacian grid side (matrix is n²×n²).
        n: u32,
        /// Data layout.
        layout: EmuLayout,
        /// Nonzeros per spawned task.
        grain: usize,
    },
    /// Raw threadlet scripts for the three-way lockstep harness.
    Script(Vec<ThreadScript>),
}

impl ResolvedWorkload {
    /// The workload family this resolved to.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            ResolvedWorkload::Stream(_) => WorkloadKind::Stream,
            ResolvedWorkload::Chase(_) => WorkloadKind::Chase,
            ResolvedWorkload::Bfs { .. } => WorkloadKind::Bfs,
            ResolvedWorkload::Mttkrp { .. } => WorkloadKind::Mttkrp,
            ResolvedWorkload::Spmv { .. } => WorkloadKind::Spmv,
            ResolvedWorkload::Script(_) => WorkloadKind::Script,
        }
    }
}

/// One executable point of a scenario.
#[derive(Debug, Clone)]
pub struct Point {
    /// Index in sweep order (second axis fastest).
    pub index: usize,
    /// The swept `(axis key, value)` pairs of this point, in axis
    /// order; empty when the scenario has no sweep.
    pub axes: Vec<(String, String)>,
    /// The machine to simulate.
    pub cfg: MachineConfig,
    /// The workload to run on it.
    pub workload: ResolvedWorkload,
}

fn get_u64(params: &BTreeMap<String, String>, key: &str, default: u64) -> Result<u64, String> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{key}: expected an unsigned integer, got {v:?}")),
    }
}

fn get_usize(
    params: &BTreeMap<String, String>,
    key: &str,
    default: usize,
) -> Result<usize, String> {
    Ok(get_u64(params, key, default as u64)? as usize)
}

fn get_u32(params: &BTreeMap<String, String>, key: &str, default: u32) -> Result<u32, String> {
    let v = get_u64(params, key, default as u64)?;
    u32::try_from(v).map_err(|_| format!("{key}: {v} does not fit in 32 bits"))
}

/// Build the typed workload for one point's effective parameters.
fn build_workload(
    w: &Workload,
    params: &BTreeMap<String, String>,
) -> Result<ResolvedWorkload, String> {
    match w.kind {
        WorkloadKind::Stream => {
            let kernel = match params.get("kernel").map(String::as_str) {
                None | Some("add") => StreamKernel::Add,
                Some("copy") => StreamKernel::Copy,
                Some("scale") => StreamKernel::Scale,
                Some("triad") => StreamKernel::Triad,
                Some(other) => return Err(format!("kernel: unknown {other:?}")),
            };
            let strategy = match params.get("strategy").map(String::as_str) {
                None | Some("recursive-remote") => SpawnStrategy::RecursiveRemote,
                Some("serial") => SpawnStrategy::Serial,
                Some("recursive") => SpawnStrategy::Recursive,
                Some("serial-remote") => SpawnStrategy::SerialRemote,
                Some(other) => return Err(format!("strategy: unknown {other:?}")),
            };
            Ok(ResolvedWorkload::Stream(EmuStreamConfig {
                total_elems: get_u64(params, "elems", 4096)?,
                nthreads: get_usize(params, "threads", 64)?,
                strategy,
                kernel,
                single_nodelet: get_u64(params, "single_nodelet", 0)? != 0,
                stack_touch_period: get_u32(params, "stack_touch_period", 4)?,
            }))
        }
        WorkloadKind::Chase => {
            let mode = match params.get("mode").map(String::as_str) {
                None | Some("full-block") => ShuffleMode::FullBlock,
                Some("ordered") => ShuffleMode::Ordered,
                Some("intra-block") => ShuffleMode::IntraBlock,
                Some("block-shuffle") => ShuffleMode::BlockShuffle,
                Some(other) => return Err(format!("mode: unknown {other:?}")),
            };
            let cc = ChaseConfig {
                elems_per_list: get_usize(params, "elems_per_list", 512)?,
                nlists: get_usize(params, "lists", 8)?,
                block_elems: get_usize(params, "block", 32)?,
                mode,
                seed: get_u64(params, "seed", 1)?,
            };
            if !cc.elems_per_list.is_multiple_of(cc.block_elems) {
                return Err(format!(
                    "elems_per_list ({}) must be a multiple of block ({})",
                    cc.elems_per_list, cc.block_elems
                ));
            }
            Ok(ResolvedWorkload::Chase(cc))
        }
        WorkloadKind::Bfs => {
            let scale = get_u32(params, "scale", 7)?;
            if scale > 20 {
                return Err(format!("scale {scale} too large (max 20)"));
            }
            let src = get_u32(params, "src", 0)?;
            if src >= 1u32 << scale {
                return Err(format!("src {src} out of range for scale {scale}"));
            }
            let mode = match params.get("mode").map(String::as_str) {
                None | Some("migrating") => BfsMode::Migrating,
                Some("remote-flags") => BfsMode::RemoteFlags,
                Some(other) => return Err(format!("mode: unknown {other:?}")),
            };
            Ok(ResolvedWorkload::Bfs {
                scale,
                edges: get_usize(params, "edges", 512)?,
                seed: get_u64(params, "seed", 1)?,
                src,
                mode,
                threads: get_usize(params, "threads", 32)?,
            })
        }
        WorkloadKind::Mttkrp => {
            let layout = match params.get("layout").map(String::as_str) {
                None | Some("slice-blocked") => TensorLayout::SliceBlocked,
                Some("1d") => TensorLayout::OneD,
                Some(other) => return Err(format!("layout: unknown {other:?}")),
            };
            Ok(ResolvedWorkload::Mttkrp {
                dims: [
                    get_u32(params, "i", 12)?,
                    get_u32(params, "j", 10)?,
                    get_u32(params, "k", 10)?,
                ],
                nnz: get_usize(params, "nnz", 200)?,
                rank: get_u32(params, "rank", 4)?,
                layout,
                threads: get_usize(params, "threads", 64)?,
                seed: get_u64(params, "seed", 1)?,
            })
        }
        WorkloadKind::Spmv => {
            let layout = match params.get("layout").map(String::as_str) {
                None | Some("2d") => EmuLayout::TwoD,
                Some("local") => EmuLayout::Local,
                Some("1d") => EmuLayout::OneD,
                Some(other) => return Err(format!("layout: unknown {other:?}")),
            };
            Ok(ResolvedWorkload::Spmv {
                n: get_u32(params, "n", 12)?,
                layout,
                grain: get_usize(params, "grain", 16)?,
            })
        }
        WorkloadKind::Script => Ok(ResolvedWorkload::Script(w.threads.clone())),
    }
}

/// Expand a scenario into its executable points (sweep cartesian
/// product; the second axis varies fastest). Performs all semantic
/// validation; never runs the engine.
pub fn resolve(s: &Scenario) -> Result<Vec<Point>, String> {
    // Index tuples over the axes (one empty tuple when no sweep).
    let mut tuples: Vec<Vec<usize>> = vec![Vec::new()];
    for axis in &s.sweep {
        let mut next = Vec::with_capacity(tuples.len() * axis.values.len());
        for t in &tuples {
            for i in 0..axis.values.len() {
                let mut t = t.clone();
                t.push(i);
                next.push(t);
            }
        }
        tuples = next;
    }

    let mut points = Vec::with_capacity(tuples.len());
    for (index, tuple) in tuples.iter().enumerate() {
        let axes: Vec<(String, String)> = s
            .sweep
            .iter()
            .zip(tuple)
            .map(|(a, &i)| (a.key.clone(), a.values[i].clone()))
            .collect();

        let mut cfg = emu_core::presets::by_name(&s.preset)?;
        for (k, v) in &s.machine_overrides {
            apply_config_key(&mut cfg, k, v)?;
        }
        for (k, v) in &s.faults {
            apply_config_key(&mut cfg, &format!("fault_{k}"), v)?;
        }
        let mut params = s.workload.params.clone();
        for (key, val) in &axes {
            if let Some(k) = key.strip_prefix("machine.") {
                apply_config_key(&mut cfg, k, val).map_err(|e| format!("axis {key}: {e}"))?;
            } else if let Some(k) = key.strip_prefix("faults.") {
                apply_config_key(&mut cfg, &format!("fault_{k}"), val)
                    .map_err(|e| format!("axis {key}: {e}"))?;
            } else {
                params.insert(key.clone(), val.clone());
            }
        }
        cfg.validate()?;
        let workload =
            build_workload(&s.workload, &params).map_err(|e| format!("point {index}: {e}"))?;
        points.push(Point {
            index,
            axes,
            cfg,
            workload,
        });
    }
    Ok(points)
}
