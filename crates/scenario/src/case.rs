//! Bridging the fuzz corpus and the scenario language.
//!
//! The fuzzer generates and shrinks on [`FuzzCase`] (the engine-level
//! form); this module lifts those cases into self-contained script
//! scenarios — every machine key written out explicitly, faults in the
//! faults section, one `thread` line per script — and lowers script
//! scenarios back down. Minimized repros are emitted as `.scn` so the
//! corpus, the registry, and the conformance runner all speak one
//! language.

use crate::ast::{Scenario, Workload, WorkloadKind};
use conformance::fuzz::{self, FuzzCase};
use desim::rng::Rng64;
use std::collections::BTreeMap;

/// Lift a fuzz case into a self-contained script scenario named
/// `name`. The machine is spelled out key by key (the corpus codec's
/// encoding), so the scenario does not depend on preset defaults.
pub fn scenario_from_case(name: &str, case: &FuzzCase) -> Scenario {
    let mut machine_overrides = Vec::new();
    let mut faults = Vec::new();
    let mut threads = Vec::new();
    for line in fuzz::encode(case).lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, val) = line
            .split_once('=')
            .expect("fuzz::encode emits key=value lines");
        if key == "thread" {
            threads.push(fuzz::parse_thread(val).expect("fuzz::encode emits valid threads"));
        } else if let Some(fk) = key.strip_prefix("fault_") {
            faults.push((fk.to_string(), val.to_string()));
        } else {
            machine_overrides.push((key.to_string(), val.to_string()));
        }
    }
    Scenario {
        name: name.to_string(),
        preset: "chick".to_string(),
        machine_overrides,
        workload: Workload {
            kind: WorkloadKind::Script,
            params: BTreeMap::new(),
            threads,
        },
        faults,
        sweep: Vec::new(),
        expect: Vec::new(),
    }
}

/// Lower a script scenario back to the engine-level fuzz case. Errors
/// on non-script workloads and on swept scenarios (a fuzz case is one
/// point).
pub fn case_from_scenario(s: &Scenario) -> Result<FuzzCase, String> {
    if s.workload.kind != WorkloadKind::Script {
        return Err(format!(
            "scenario {:?} is a {} workload, not a script",
            s.name,
            s.workload.kind.name()
        ));
    }
    if !s.sweep.is_empty() {
        return Err(format!(
            "scenario {:?} sweeps; a fuzz case is one point",
            s.name
        ));
    }
    let cfg = crate::parse::base_config(s)?;
    Ok(FuzzCase {
        cfg,
        threads: s.workload.threads.clone(),
    })
}

/// Generate a random script scenario (the fuzzer's unit of work).
pub fn gen_scenario(name: &str, rng: &mut Rng64) -> Scenario {
    scenario_from_case(name, &fuzz::gen_case(rng))
}

/// Greedily shrink a failing scenario, spending at most `max_evals`
/// probe runs. `still_fails` must return true when the candidate still
/// reproduces the failure. Shrinking happens on the underlying fuzz
/// case; the result is lifted back under the same name.
pub fn shrink_scenario(
    s: &Scenario,
    max_evals: usize,
    still_fails: &mut dyn FnMut(&Scenario) -> bool,
) -> Result<Scenario, String> {
    let case = case_from_scenario(s)?;
    let name = s.name.clone();
    let best = fuzz::shrink_with(&case, max_evals, &mut |c| {
        still_fails(&scenario_from_case(&name, c))
    });
    Ok(scenario_from_case(&name, &best))
}
