//! A declarative scenario language for the Emu Chick simulator, and
//! the committed registry that serves as the main conformance suite.
//!
//! One `.scn` file names a machine (preset + inline overrides), a
//! workload (STREAM, pointer chase, BFS, MTTKRP, SpMV, or a raw
//! threadlet script), an optional seeded fault plan, a sweep of up to
//! two axes, and a block of `expect` assertions: counter bounds,
//! closed-form oracle ratio bands, monotonicity along a swept axis,
//! and byte-identical reports across scheduler worker counts.
//!
//! - [`ast`] — what a parsed scenario means.
//! - [`parse`] — the line-oriented parser (every error carries its
//!   line number) and the canonical printer.
//! - [`resolve`] — lowering onto [`emu_core::config::MachineConfig`]
//!   and the benchmark crates' own configs; sweep expansion.
//! - [`run`] — point execution with functional verification and
//!   physical-invariant audits, plus the *pure* assertion evaluator.
//! - [`case`] — lifting fuzz cases to script scenarios and back, so
//!   the fuzzer generates, shrinks, and emits repros in `.scn`.
//! - [`registry`] — the deterministic generator of the committed
//!   `scenarios/` tree.
//!
//! The runner in `simctl scenario run` and the daemon's
//! `{"op":"scenario"}` request both sit on these modules; neither adds
//! semantics of its own.

pub mod ast;
pub mod case;
pub mod parse;
pub mod registry;
pub mod resolve;
pub mod run;

pub use ast::{Axis, CmpOp, Direction, Expect, Scenario, Workload, WorkloadKind};
pub use parse::{parse, print};
pub use resolve::{resolve, Point, ResolvedWorkload};
pub use run::{
    evaluate, run_point, run_scenario, run_scenario_cached, PointOutcome, ScenarioOutcome,
};
