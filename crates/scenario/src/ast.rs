//! The scenario AST: what a parsed `.scn` file means.
//!
//! A scenario composes a machine (preset plus inline overrides), one
//! workload, an optional seeded fault plan, an optional sweep of at
//! most two axes, and a set of `expect` assertions evaluated against
//! the executed points. Every type here derives `PartialEq` so the
//! parser's print→parse round trip can be checked structurally.

use conformance::fuzz::ThreadScript;

/// A complete parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (`[A-Za-z0-9._-]+`), from the `scenario` line.
    pub name: String,
    /// Machine preset name ([`emu_core::presets::by_name`] vocabulary).
    pub preset: String,
    /// Inline machine overrides in file order, using the corpus codec
    /// key vocabulary ([`conformance::fuzz::apply_config_key`]).
    pub machine_overrides: Vec<(String, String)>,
    /// The workload to run at every point.
    pub workload: Workload,
    /// Fault-plan fields in file order (codec keys without the
    /// `fault_` prefix; empty = no injected faults).
    pub faults: Vec<(String, String)>,
    /// Swept axes (at most two), in file order.
    pub sweep: Vec<Axis>,
    /// Assertions evaluated against the executed points.
    pub expect: Vec<Expect>,
}

/// Which benchmark a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WorkloadKind {
    /// STREAM (Fig 4/5): `membench::stream`.
    Stream,
    /// Blocked pointer chasing (Fig 6/7): `membench::chase`.
    Chase,
    /// Level-synchronous BFS: `emu_graph::bfs`.
    Bfs,
    /// Sparse MTTKRP: `emu_tensor::emu`.
    Mttkrp,
    /// Laplacian SpMV: `membench::spmv_emu`.
    Spmv,
    /// Raw threadlet scripts (the fuzz-case form), run through the
    /// three-way lockstep conformance harness.
    Script,
}

impl WorkloadKind {
    /// The keyword used in `.scn` files.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Stream => "stream",
            WorkloadKind::Chase => "chase",
            WorkloadKind::Bfs => "bfs",
            WorkloadKind::Mttkrp => "mttkrp",
            WorkloadKind::Spmv => "spmv",
            WorkloadKind::Script => "script",
        }
    }

    /// Every workload kind, in the paper's order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::Stream,
        WorkloadKind::Chase,
        WorkloadKind::Bfs,
        WorkloadKind::Mttkrp,
        WorkloadKind::Spmv,
        WorkloadKind::Script,
    ];

    /// Parse the `.scn` keyword.
    pub fn from_name(s: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// A workload: its kind, its `key = value` parameters (unset keys take
/// resolver defaults), and — for [`WorkloadKind::Script`] only — the
/// threadlet scripts.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The benchmark family.
    pub kind: WorkloadKind,
    /// Parameters by key (validated against the kind's schema at parse
    /// time; stored sorted so printing is canonical).
    pub params: std::collections::BTreeMap<String, String>,
    /// Threadlet scripts (`thread = <start> <ops…>` lines); only
    /// non-empty for [`WorkloadKind::Script`].
    pub threads: Vec<ThreadScript>,
}

/// One swept axis: a key and the values it takes, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// What is swept: a workload parameter key, `machine.<codec key>`,
    /// or `faults.<key>`.
    pub key: String,
    /// The values, as written (validated against the key's schema).
    pub values: Vec<String>,
}

/// Comparison operator of a `counter` assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
}

impl CmpOp {
    /// The `.scn` spelling.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Ge => ">=",
            CmpOp::Lt => "<",
            CmpOp::Gt => ">",
        }
    }

    /// Parse the `.scn` spelling.
    pub fn from_name(s: &str) -> Option<CmpOp> {
        Some(match s {
            "==" => CmpOp::Eq,
            "!=" => CmpOp::Ne,
            "<=" => CmpOp::Le,
            ">=" => CmpOp::Ge,
            "<" => CmpOp::Lt,
            ">" => CmpOp::Gt,
            _ => return None,
        })
    }

    /// Apply the comparison.
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Gt => lhs > rhs,
        }
    }
}

/// Direction of a `monotonic` assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Values must never decrease along the axis.
    NonDecreasing,
    /// Values must never increase along the axis.
    NonIncreasing,
}

impl Direction {
    /// The `.scn` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Direction::NonDecreasing => "nondecreasing",
            Direction::NonIncreasing => "nonincreasing",
        }
    }

    /// Parse the `.scn` spelling.
    pub fn from_name(s: &str) -> Option<Direction> {
        match s {
            "nondecreasing" => Some(Direction::NonDecreasing),
            "nonincreasing" => Some(Direction::NonIncreasing),
            _ => None,
        }
    }
}

/// One `expect` assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum Expect {
    /// `counter <metric> <op> <value>` — a per-point bound on one
    /// metric (see `run::METRICS` for the vocabulary).
    Counter {
        /// Metric name.
        metric: String,
        /// Comparison.
        op: CmpOp,
        /// Right-hand side.
        value: f64,
    },
    /// `oracle <name> in <lo>..<hi>` — the named closed-form oracle's
    /// measured/predicted ratio must fall in the band, per point.
    Oracle {
        /// Oracle name (`conformance::oracle` vocabulary).
        name: String,
        /// Inclusive lower ratio bound.
        lo: f64,
        /// Inclusive upper ratio bound.
        hi: f64,
    },
    /// `monotonic <metric> <dir> over <axis>` — along the named swept
    /// axis (the other axis held fixed), the metric is monotone.
    Monotonic {
        /// Metric name.
        metric: String,
        /// Required direction.
        dir: Direction,
        /// Key of the swept axis.
        axis: String,
    },
    /// `byte_identical_at_sim_threads = 1, 2, 4` — every point's full
    /// report JSON is byte-identical when re-run at each listed
    /// scheduler worker count (the PR 5 determinism invariant).
    ByteIdentical {
        /// Scheduler worker counts to compare (at least two).
        sim_threads: Vec<usize>,
    },
}
