//! Executing scenario points and evaluating `expect` blocks.
//!
//! [`run_point`] executes one resolved point — the workload runs with
//! functional verification (checksums, reference BFS/MTTKRP/SpMV
//! results), every report is audited against the engine's physical
//! invariants, and the report totals become a flat metric map. When
//! the scenario carries a `byte_identical_at_sim_threads` assertion the
//! point is re-run at each listed scheduler worker count and the full
//! report JSON is captured as a fingerprint. When it names oracles,
//! their measured/predicted ratios are computed against the point's
//! machine and added as `oracle:<name>` metrics.
//!
//! [`evaluate`] is pure — it looks only at [`PointOutcome`] values, so
//! the mutation tests in `tests/mutation.rs` can tamper with outcomes
//! and prove each assertion kind actually rejects a seeded bug.

use crate::ast::*;
use crate::resolve::{Point, ResolvedWorkload};
use conformance::fuzz::FuzzCase;
use conformance::oracle;
use emu_core::audit::audit;
use emu_core::config::MachineConfig;
use emu_core::engine::Engine;
use emu_core::json::report_json;
use emu_core::metrics::RunReport;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Everything observed at one executed point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Index in sweep order.
    pub index: usize,
    /// The swept `(axis key, value)` pairs of this point.
    pub axes: Vec<(String, String)>,
    /// Flat metric map (see [`crate::parse::METRICS`], plus
    /// `oracle:<name>` ratios when the scenario asserts oracles).
    pub metrics: BTreeMap<String, f64>,
    /// `(sim_threads, full report JSON)` fingerprints, one per worker
    /// count listed in a `byte_identical_at_sim_threads` assertion.
    pub fingerprints: Vec<(usize, String)>,
    /// Functional / audit / simulation problems (empty = clean run).
    pub problems: Vec<String>,
}

/// Result of running one whole scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Executed points, in sweep order.
    pub points: Vec<PointOutcome>,
    /// Failed assertions and per-point problems (empty = pass).
    pub failures: Vec<String>,
}

impl ScenarioOutcome {
    /// Did every point run clean and every assertion hold?
    pub fn pass(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Serializes save/set/restore cycles of the process-global scheduler
/// worker count during byte-identity fingerprinting. Plain runs do not
/// take it: the PR 5 invariant (reports are byte-identical at any
/// worker count) makes a concurrent temporary change harmless to them.
static SIM_THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Workload-level results that are not in the machine report.
#[derive(Default)]
struct Extras {
    bandwidth_bps: Option<f64>,
    depth: Option<f64>,
    edges_traversed: Option<f64>,
    teps: Option<f64>,
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// Run the point's workload once under the current scheduler settings
/// (`sim_override` pins the worker count for script runs, which build
/// their own engine). Returns the run's reports; pushes functional and
/// audit problems.
fn exec_point(
    p: &Point,
    sim_override: Option<usize>,
    problems: &mut Vec<String>,
) -> (Vec<RunReport>, Extras) {
    let mut extras = Extras::default();
    let reports = match &p.workload {
        ResolvedWorkload::Stream(sc) => match membench::stream::run_stream_emu(&p.cfg, sc) {
            Err(e) => {
                problems.push(format!("stream: {e:?}"));
                Vec::new()
            }
            Ok(r) => {
                let want = membench::stream::stream_checksum(sc.total_elems, sc.kernel);
                if r.checksum != want {
                    problems.push(format!("stream checksum {} != expected {want}", r.checksum));
                }
                extras.bandwidth_bps = Some(r.bandwidth.bytes_per_sec);
                vec![r.report]
            }
        },
        ResolvedWorkload::Chase(cc) => match membench::chase::run_chase_emu(&p.cfg, cc) {
            Err(e) => {
                problems.push(format!("chase: {e:?}"));
                Vec::new()
            }
            Ok(r) => {
                let want = cc.expected_checksum();
                if r.checksum != want {
                    problems.push(format!("chase checksum {} != expected {want}", r.checksum));
                }
                extras.bandwidth_bps = Some(r.bandwidth.bytes_per_sec);
                r.report.into_iter().collect()
            }
        },
        ResolvedWorkload::Bfs {
            scale,
            edges,
            seed,
            src,
            mode,
            threads,
        } => {
            let el = emu_graph::gen::rmat(*scale, *edges, *seed);
            let g = Arc::new(emu_graph::stinger::Stinger::build_host(
                &el,
                4,
                p.cfg.total_nodelets(),
            ));
            match emu_graph::bfs::run_bfs_emu(&p.cfg, Arc::clone(&g), *src, *mode, *threads) {
                Err(e) => {
                    problems.push(format!("bfs: {e:?}"));
                    Vec::new()
                }
                Ok(r) => {
                    if r.levels != g.bfs_reference(*src) {
                        problems.push("bfs levels diverge from the reference traversal".into());
                    }
                    extras.depth = Some(r.depth as f64);
                    extras.edges_traversed = Some(r.edges_traversed as f64);
                    extras.teps = Some(r.teps);
                    r.reports
                }
            }
        }
        ResolvedWorkload::Mttkrp {
            dims,
            nnz,
            rank,
            layout,
            threads,
            seed,
        } => {
            let t = Arc::new(emu_tensor::coo::random_tensor(*dims, *nnz, *seed));
            let mc = emu_tensor::emu::EmuMttkrpConfig {
                layout: *layout,
                rank: *rank,
                nthreads: *threads,
            };
            match emu_tensor::emu::run_mttkrp_emu(&p.cfg, Arc::clone(&t), &mc) {
                Err(e) => {
                    problems.push(format!("mttkrp: {e:?}"));
                    Vec::new()
                }
                Ok(r) => {
                    let want = emu_tensor::coo::mttkrp_reference(&t, *rank);
                    if r.y.len() != want.len() || r.y.iter().zip(&want).any(|(&a, &b)| !close(a, b))
                    {
                        problems.push("mttkrp output diverges from the reference".into());
                    }
                    extras.bandwidth_bps = Some(r.bandwidth.bytes_per_sec);
                    vec![r.report]
                }
            }
        }
        ResolvedWorkload::Spmv { n, layout, grain } => {
            let m = Arc::new(spmat::laplacian(spmat::LaplacianSpec::paper(*n)));
            let sc = membench::spmv_emu::EmuSpmvConfig {
                layout: *layout,
                grain_nnz: *grain,
            };
            match membench::spmv_emu::run_spmv_emu(&p.cfg, Arc::clone(&m), &sc) {
                Err(e) => {
                    problems.push(format!("spmv: {e:?}"));
                    Vec::new()
                }
                Ok(r) => {
                    let x = membench::spmv_emu::x_vector(m.ncols());
                    let want = m.spmv(&x);
                    if r.y.len() != want.len() || r.y.iter().zip(&want).any(|(&a, &b)| !close(a, b))
                    {
                        problems.push("spmv output diverges from the reference".into());
                    }
                    extras.bandwidth_bps = Some(r.bandwidth.bytes_per_sec);
                    vec![r.report]
                }
            }
        }
        ResolvedWorkload::Script(threads) => {
            let run = || -> Result<RunReport, emu_core::fault::SimError> {
                let mut e = Engine::new(p.cfg.clone())?;
                if let Some(n) = sim_override {
                    e.set_sim_threads(n);
                }
                conformance::fuzz::seed_case(
                    &mut e,
                    &FuzzCase {
                        cfg: p.cfg.clone(),
                        threads: threads.clone(),
                    },
                )?;
                e.run()
            };
            match run() {
                Err(e) => {
                    problems.push(format!("script: {e:?}"));
                    Vec::new()
                }
                Ok(r) => vec![r],
            }
        }
    };
    for r in &reports {
        for v in audit(&p.cfg, r) {
            problems.push(format!("audit: {v}"));
        }
    }
    (reports, extras)
}

/// Flatten reports + workload extras into the metric map.
fn point_metrics(reports: &[RunReport], extras: &Extras) -> BTreeMap<String, f64> {
    let mut m = BTreeMap::new();
    if !reports.is_empty() {
        let sum = |f: &dyn Fn(&RunReport) -> u64| reports.iter().map(f).sum::<u64>() as f64;
        m.insert("makespan_ps".into(), sum(&|r| r.makespan.ps()));
        m.insert("events".into(), sum(&|r| r.events));
        m.insert("threads".into(), sum(&|r| r.threads));
        m.insert("migrations".into(), sum(&|r| r.total_migrations()));
        m.insert("spawns".into(), sum(&|r| r.total_spawns()));
        m.insert("nacks".into(), sum(&|r| r.total_nacks()));
        m.insert("retries".into(), sum(&|r| r.total_retries()));
        m.insert("ecc_retries".into(), sum(&|r| r.total_ecc_retries()));
        m.insert(
            "link_retransmits".into(),
            sum(&|r| r.total_link_retransmits()),
        );
        m.insert("redirects".into(), sum(&|r| r.total_redirects()));
        m.insert("bytes".into(), sum(&|r| r.total_bytes()));
        if let [r] = reports {
            // Rates and utilizations only make sense for a single
            // engine run; summing them across BFS levels would not.
            m.insert("core_utilization".into(), r.core_utilization());
            m.insert("channel_utilization".into(), r.channel_utilization());
            m.insert("migration_rate".into(), r.migration_rate());
        }
    }
    for (key, val) in [
        ("bandwidth_bps", extras.bandwidth_bps),
        ("depth", extras.depth),
        ("edges_traversed", extras.edges_traversed),
        ("teps", extras.teps),
    ] {
        if let Some(v) = val {
            m.insert(key.into(), v);
        }
    }
    m
}

/// Worker counts a `byte_identical_at_sim_threads` assertion wants
/// (union over assertions; empty = no fingerprinting).
fn wanted_sim_threads(s: &Scenario) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::new();
    for e in &s.expect {
        if let Expect::ByteIdentical { sim_threads } = e {
            for &n in sim_threads {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
    }
    out
}

fn run_oracle(name: &str, cfg: &MachineConfig) -> Result<oracle::OracleCheck, String> {
    let r = match name {
        "stream-saturated" => oracle::check_stream_saturated(cfg),
        "stream-single-thread" => oracle::check_stream_single_thread(cfg),
        "migration-ceiling" => oracle::check_migration_ceiling(cfg),
        "channel-peak" => oracle::check_channel_peak(cfg),
        other => return Err(format!("unknown oracle {other:?}")),
    };
    r.map_err(|e| format!("oracle {name}: {e:?}"))
}

/// Execute one resolved point of `s`.
pub fn run_point(s: &Scenario, p: &Point) -> PointOutcome {
    let mut problems = Vec::new();

    // The lockstep conformance harness (calendar vs reference queue vs
    // two-shard PDES, plus trace/counter audits) runs once per point
    // for script workloads — it is the scenario-language form of the
    // fuzzer's check.
    if let ResolvedWorkload::Script(threads) = &p.workload {
        problems.extend(conformance::fuzz::run_case(&FuzzCase {
            cfg: p.cfg.clone(),
            threads: threads.clone(),
        }));
    }

    let counts = wanted_sim_threads(s);
    let mut fingerprints = Vec::new();
    let (reports, extras) = if counts.is_empty() {
        exec_point(p, None, &mut problems)
    } else {
        let guard = SIM_THREADS_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let prev = emu_core::engine::sim_threads();
        let mut first = None;
        for &n in &counts {
            emu_core::engine::set_sim_threads(n);
            let (reports, extras) = exec_point(p, Some(n), &mut problems);
            let fp = reports
                .iter()
                .map(|r| report_json(&s.name, r))
                .collect::<Vec<_>>()
                .join("\n");
            fingerprints.push((n, fp));
            if first.is_none() {
                first = Some((reports, extras));
            }
        }
        emu_core::engine::set_sim_threads(prev);
        drop(guard);
        first.unwrap()
    };

    let mut metrics = point_metrics(&reports, &extras);

    for e in &s.expect {
        if let Expect::Oracle { name, .. } = e {
            let key = format!("oracle:{name}");
            if metrics.contains_key(&key) {
                continue;
            }
            match run_oracle(name, &p.cfg) {
                Ok(check) => {
                    metrics.insert(key, check.ratio());
                }
                Err(e) => problems.push(e),
            }
        }
    }

    PointOutcome {
        index: p.index,
        axes: p.axes.clone(),
        metrics,
        fingerprints,
        problems,
    }
}

fn point_tag(index: usize, axes: &[(String, String)]) -> String {
    if axes.is_empty() {
        format!("point {index}")
    } else {
        let kv = axes
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("point {index} [{kv}]")
    }
}

/// Evaluate the scenario's assertions against executed points. Pure:
/// no engine access, only the outcome values.
pub fn evaluate(s: &Scenario, points: &[PointOutcome]) -> Vec<String> {
    let mut fails = Vec::new();
    for p in points {
        for prob in &p.problems {
            fails.push(format!("{}: {prob}", point_tag(p.index, &p.axes)));
        }
    }
    for e in &s.expect {
        match e {
            Expect::Counter { metric, op, value } => {
                for p in points {
                    match p.metrics.get(metric) {
                        None => fails.push(format!(
                            "{}: metric {metric} not produced by this workload",
                            point_tag(p.index, &p.axes)
                        )),
                        Some(&m) => {
                            if !op.eval(m, *value) {
                                fails.push(format!(
                                    "{}: counter {metric} = {m} violates `{metric} {} {value}`",
                                    point_tag(p.index, &p.axes),
                                    op.name()
                                ));
                            }
                        }
                    }
                }
            }
            Expect::Oracle { name, lo, hi } => {
                let key = format!("oracle:{name}");
                for p in points {
                    match p.metrics.get(&key) {
                        None => fails.push(format!(
                            "{}: oracle {name} ratio missing",
                            point_tag(p.index, &p.axes)
                        )),
                        Some(&r) => {
                            if !(r.is_finite() && r >= *lo && r <= *hi) {
                                fails.push(format!(
                                    "{}: oracle {name} ratio {r:.4} outside {lo}..{hi}",
                                    point_tag(p.index, &p.axes)
                                ));
                            }
                        }
                    }
                }
            }
            Expect::Monotonic { metric, dir, axis } => {
                let Some(ai) = s.sweep.iter().position(|a| &a.key == axis) else {
                    fails.push(format!("monotonic: axis {axis:?} is not swept"));
                    continue;
                };
                // Group points by the value of every *other* axis, then
                // order each group by the declared value order of the
                // monotone axis.
                let mut groups: BTreeMap<String, Vec<(usize, f64, usize)>> = BTreeMap::new();
                for p in points {
                    let Some(&m) = p.metrics.get(metric) else {
                        fails.push(format!(
                            "{}: metric {metric} not produced by this workload",
                            point_tag(p.index, &p.axes)
                        ));
                        continue;
                    };
                    let Some((_, axis_val)) = p.axes.get(ai) else {
                        continue;
                    };
                    let Some(vi) = s.sweep[ai].values.iter().position(|v| v == axis_val) else {
                        continue;
                    };
                    let gkey = p
                        .axes
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != ai)
                        .map(|(_, (k, v))| format!("{k}={v}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    groups.entry(gkey).or_default().push((vi, m, p.index));
                }
                for (gkey, mut vs) in groups {
                    vs.sort_by_key(|&(vi, _, _)| vi);
                    for w in vs.windows(2) {
                        let ok = match dir {
                            Direction::NonDecreasing => w[1].1 >= w[0].1,
                            Direction::NonIncreasing => w[1].1 <= w[0].1,
                        };
                        if !ok {
                            let at = if gkey.is_empty() {
                                String::new()
                            } else {
                                format!(" (at {gkey})")
                            };
                            fails.push(format!(
                                "monotonic {metric} {} over {axis} violated{at}: \
                                 {axis}={} gives {} then {axis}={} gives {}",
                                dir.name(),
                                s.sweep[ai].values[w[0].0],
                                w[0].1,
                                s.sweep[ai].values[w[1].0],
                                w[1].1
                            ));
                            break;
                        }
                    }
                }
            }
            Expect::ByteIdentical { sim_threads } => {
                for p in points {
                    for &n in sim_threads {
                        if !p.fingerprints.iter().any(|(m, _)| *m == n) {
                            fails.push(format!(
                                "{}: no fingerprint captured at sim_threads={n}",
                                point_tag(p.index, &p.axes)
                            ));
                        }
                    }
                    if let Some((n0, fp0)) = p.fingerprints.first() {
                        for (n, fp) in &p.fingerprints[1..] {
                            if fp != fp0 {
                                fails.push(format!(
                                    "{}: report at sim_threads={n} is not byte-identical \
                                     to sim_threads={n0}",
                                    point_tag(p.index, &p.axes)
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    fails
}

/// Resolve and run every point of a scenario, then evaluate its
/// assertions. Points run sequentially; parallelism belongs one level
/// up (across scenarios).
pub fn run_scenario(s: &Scenario) -> ScenarioOutcome {
    let points = match crate::resolve::resolve(s) {
        Ok(p) => p,
        Err(e) => {
            return ScenarioOutcome {
                name: s.name.clone(),
                points: Vec::new(),
                failures: vec![format!("resolve: {e}")],
            }
        }
    };
    let outcomes: Vec<PointOutcome> = points.iter().map(|p| run_point(s, p)).collect();
    let failures = evaluate(s, &outcomes);
    ScenarioOutcome {
        name: s.name.clone(),
        points: outcomes,
        failures,
    }
}

// ---------------------------------------------------------------------------
// Content-addressed point memoization
// ---------------------------------------------------------------------------

impl PointOutcome {
    /// Serialize for the result cache. Declines (`None`) when a metric
    /// is non-finite: the strict JSON reader would reject it on load.
    pub fn cache_json(&self) -> Option<String> {
        use emu_core::json::jstr;
        use std::fmt::Write as _;
        if self.metrics.values().any(|v| !v.is_finite()) {
            return None;
        }
        let mut s = String::new();
        let _ = write!(s, "{{\"index\":{},\"axes\":[", self.index);
        for (i, (k, v)) in self.axes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},{}]", jstr(k), jstr(v));
        }
        s.push_str("],\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}:{v:?}", jstr(k));
        }
        s.push_str("},\"fingerprints\":[");
        for (i, (n, fp)) in self.fingerprints.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{n},{}]", jstr(fp));
        }
        s.push_str("],\"problems\":[");
        for (i, p) in self.problems.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&jstr(p));
        }
        s.push_str("]}");
        Some(s)
    }

    /// Parse a cached outcome back; strict — any shape mismatch is an
    /// error, and the caller falls back to re-running the point.
    pub fn from_cache_json(text: &str) -> Result<PointOutcome, String> {
        use emu_core::jsonread::{parse, Value};
        let v = parse(text)?;
        let index = v
            .get("index")
            .and_then(Value::as_u64)
            .ok_or("missing index")? as usize;
        let pair = |x: &Value| -> Option<(String, String)> {
            match x {
                Value::Arr(kv) if kv.len() == 2 => {
                    Some((kv[0].as_str()?.to_string(), kv[1].as_str()?.to_string()))
                }
                _ => None,
            }
        };
        let axes = match v.get("axes") {
            Some(Value::Arr(xs)) => xs
                .iter()
                .map(|x| pair(x).ok_or("bad axis pair"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing axes".into()),
        };
        let metrics = match v.get("metrics") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(k, x)| x.as_f64().map(|f| (k.clone(), f)).ok_or("bad metric"))
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err("missing metrics".into()),
        };
        let fingerprints = match v.get("fingerprints") {
            Some(Value::Arr(xs)) => xs
                .iter()
                .map(|x| match x {
                    Value::Arr(nf) if nf.len() == 2 => {
                        let n = nf[0].as_u64().ok_or("bad fingerprint count")? as usize;
                        let fp = nf[1].as_str().ok_or("bad fingerprint body")?.to_string();
                        Ok((n, fp))
                    }
                    _ => Err("bad fingerprint pair".to_string()),
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing fingerprints".into()),
        };
        let problems = match v.get("problems") {
            Some(Value::Arr(xs)) => xs
                .iter()
                .map(|x| x.as_str().map(str::to_string).ok_or("bad problem"))
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing problems".into()),
        };
        Ok(PointOutcome {
            index,
            axes,
            metrics,
            fingerprints,
            problems,
        })
    }
}

/// Whether scenario points may be served from the result cache: the
/// cache must be on and no process-global telemetry armed (a traced or
/// report-collecting run must execute every point).
fn cache_active() -> bool {
    runcache::enabled()
        && !emu_core::trace::collecting_reports()
        && !emu_core::trace::global().enabled()
        && !emu_core::engine::phase_profile()
}

/// The scenario text hashed into cache keys: the canonical print of a
/// copy whose machine-override and fault lines are stable-sorted by
/// key. Reordering semantically order-free lines must not change the
/// digest; duplicate keys keep their relative (last-wins) order.
pub fn digest_form(s: &Scenario) -> String {
    let mut c = s.clone();
    c.machine_overrides.sort_by(|a, b| a.0.cmp(&b.0));
    c.faults.sort_by(|a, b| a.0.cmp(&b.0));
    crate::parse::print(&c)
}

/// [`run_scenario`], serving unchanged points from the result cache.
///
/// The digest covers the scenario's canonical printed text (override
/// lines normalized by [`digest_form`]) plus the fully-resolved point
/// (machine config, workload config, sweep axes), so any edit to the
/// `.scn` file or to a preset lands on a different key. Assertions are
/// always re-evaluated over the (cached or fresh) outcomes. With the
/// cache disabled this is exactly [`run_scenario`].
pub fn run_scenario_cached(s: &Scenario) -> ScenarioOutcome {
    if !cache_active() {
        return run_scenario(s);
    }
    let points = match crate::resolve::resolve(s) {
        Ok(p) => p,
        Err(e) => {
            return ScenarioOutcome {
                name: s.name.clone(),
                points: Vec::new(),
                failures: vec![format!("resolve: {e}")],
            }
        }
    };
    let printed = crate::parse::print(s);
    let hashed = digest_form(s);
    let outcomes: Vec<PointOutcome> = points
        .iter()
        .map(|p| {
            let mut k = runcache::Key::new("scn-point");
            k.record("scenario", &hashed);
            k.record("index", &p.index.to_string());
            k.record_debug("point", p);
            let digest = k.digest();
            if let Some(e) = runcache::lookup(&digest) {
                if let Ok(o) = PointOutcome::from_cache_json(&e.payload) {
                    return o;
                }
            }
            let o = run_point(s, p);
            if let Some(payload) = o.cache_json() {
                runcache::publish(
                    &digest,
                    &runcache::Entry {
                        kind: "scn-point".into(),
                        label: format!("{} #{}", s.name, p.index),
                        payload,
                        recipe: Some(format!("scn:{}\n{printed}", p.index)),
                    },
                );
            }
            o
        })
        .collect();
    let failures = evaluate(s, &outcomes);
    ScenarioOutcome {
        name: s.name.clone(),
        points: outcomes,
        failures,
    }
}
