//! Parser and canonical printer for the `.scn` text format.
//!
//! The format is line-oriented: a `scenario <name>` line, then
//! sections. Section headers are recognized by their first token
//! (`machine`, `workload`, `faults`, `sweep`, `expect`); every other
//! line belongs to the section above it. `#` lines are comments.
//!
//! ```text
//! scenario stream-chick-saturated
//!
//! machine chick
//!   gc_hz = 150000000          # optional codec-key overrides
//!
//! workload stream
//!   elems = 4096
//!   threads = 64
//!   kernel = add
//!   single_nodelet = 1
//!
//! faults
//!   seed = 7
//!   mig_nack_prob = 0.05
//!
//! sweep threads = 8, 16, 32
//!
//! expect
//!   counter nacks >= 1
//!   oracle stream-saturated in 0.95..1.02
//!   monotonic events nondecreasing over threads
//!   byte_identical_at_sim_threads = 1, 2
//! ```
//!
//! Everything is validated at parse time — section structure, key
//! vocabulary (shared with the fuzz-corpus codec), value types, enum
//! spellings, sweep arity — and every rejection carries the offending
//! line number. [`print`] renders the canonical form; `parse(print(s))
//! == s` for every valid scenario (the seeded property test in
//! `tests/props.rs`).

use crate::ast::*;
use conformance::fuzz::{apply_config_key, op_token, parse_thread};
use emu_core::config::MachineConfig;
use std::collections::BTreeMap;

/// Metric names a `counter` / `monotonic` assertion may reference.
/// Per-point values are extracted from the run reports (and the
/// workload's semantic results) by `run::point_metrics`.
pub const METRICS: &[&str] = &[
    "makespan_ps",
    "events",
    "threads",
    "migrations",
    "spawns",
    "nacks",
    "retries",
    "ecc_retries",
    "link_retransmits",
    "redirects",
    "bytes",
    "bandwidth_bps",
    "core_utilization",
    "channel_utilization",
    "migration_rate",
    "depth",
    "edges_traversed",
    "teps",
];

/// Oracle names an `oracle` assertion may reference
/// (`conformance::oracle` vocabulary).
pub const ORACLES: &[&str] = &[
    "stream-saturated",
    "stream-single-thread",
    "migration-ceiling",
    "channel-peak",
];

/// Maximum swept axes per scenario.
pub const MAX_AXES: usize = 2;

fn err(line: usize, msg: impl std::fmt::Display) -> String {
    format!("line {line}: {msg}")
}

/// Check a scenario / axis-safe name: `[A-Za-z0-9._-]+`.
fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Validate one machine-override key/value by applying it to a scratch
/// config. Rejects `fault_*` keys (those belong in the `faults`
/// section) and the codec's `thread` key.
fn check_machine_key(key: &str, val: &str) -> Result<(), String> {
    if let Some(bare) = key.strip_prefix("fault_") {
        return Err(format!(
            "fault key {key:?} belongs in the faults section (as {bare:?})"
        ));
    }
    let mut scratch = emu_core::presets::chick_prototype();
    apply_config_key(&mut scratch, key, val)
}

/// Validate one fault key/value (codec key without the `fault_`
/// prefix) by applying it to a scratch config.
fn check_fault_key(key: &str, val: &str) -> Result<(), String> {
    let mut scratch = emu_core::presets::chick_prototype();
    apply_config_key(&mut scratch, &format!("fault_{key}"), val).map_err(|e| {
        if e.starts_with("unknown key") {
            format!("unknown fault key {key:?}")
        } else {
            e
        }
    })
}

/// A value validator for one workload parameter.
type Check = fn(&str) -> Result<(), String>;

fn chk_u64_pos(v: &str) -> Result<(), String> {
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(()),
        _ => Err(format!("expected a positive integer, got {v:?}")),
    }
}

fn chk_u64(v: &str) -> Result<(), String> {
    v.parse::<u64>()
        .map(|_| ())
        .map_err(|_| format!("expected an unsigned integer, got {v:?}"))
}

fn chk_bool01(v: &str) -> Result<(), String> {
    match v {
        "0" | "1" => Ok(()),
        _ => Err(format!("expected 0 or 1, got {v:?}")),
    }
}

fn chk_kernel(v: &str) -> Result<(), String> {
    match v {
        "add" | "copy" | "scale" | "triad" => Ok(()),
        _ => Err(format!(
            "unknown kernel {v:?}; one of: add, copy, scale, triad"
        )),
    }
}

fn chk_strategy(v: &str) -> Result<(), String> {
    match v {
        "serial" | "recursive" | "serial-remote" | "recursive-remote" => Ok(()),
        _ => Err(format!(
            "unknown strategy {v:?}; one of: serial, recursive, serial-remote, recursive-remote"
        )),
    }
}

fn chk_chase_mode(v: &str) -> Result<(), String> {
    match v {
        "ordered" | "intra-block" | "block-shuffle" | "full-block" => Ok(()),
        _ => Err(format!(
            "unknown mode {v:?}; one of: ordered, intra-block, block-shuffle, full-block"
        )),
    }
}

fn chk_bfs_mode(v: &str) -> Result<(), String> {
    match v {
        "migrating" | "remote-flags" => Ok(()),
        _ => Err(format!(
            "unknown mode {v:?}; one of: migrating, remote-flags"
        )),
    }
}

fn chk_tensor_layout(v: &str) -> Result<(), String> {
    match v {
        "1d" | "slice-blocked" => Ok(()),
        _ => Err(format!("unknown layout {v:?}; one of: 1d, slice-blocked")),
    }
}

fn chk_spmv_layout(v: &str) -> Result<(), String> {
    match v {
        "local" | "1d" | "2d" => Ok(()),
        _ => Err(format!("unknown layout {v:?}; one of: local, 1d, 2d")),
    }
}

/// The parameter schema (key, value check) for one workload kind.
pub fn workload_schema(kind: WorkloadKind) -> &'static [(&'static str, Check)] {
    match kind {
        WorkloadKind::Stream => &[
            ("elems", chk_u64_pos),
            ("threads", chk_u64_pos),
            ("kernel", chk_kernel),
            ("strategy", chk_strategy),
            ("single_nodelet", chk_bool01),
            ("stack_touch_period", chk_u64),
        ],
        WorkloadKind::Chase => &[
            ("elems_per_list", chk_u64_pos),
            ("lists", chk_u64_pos),
            ("block", chk_u64_pos),
            ("mode", chk_chase_mode),
            ("seed", chk_u64),
        ],
        WorkloadKind::Bfs => &[
            ("scale", chk_u64_pos),
            ("edges", chk_u64_pos),
            ("seed", chk_u64),
            ("src", chk_u64),
            ("mode", chk_bfs_mode),
            ("threads", chk_u64_pos),
        ],
        WorkloadKind::Mttkrp => &[
            ("i", chk_u64_pos),
            ("j", chk_u64_pos),
            ("k", chk_u64_pos),
            ("nnz", chk_u64_pos),
            ("rank", chk_u64_pos),
            ("layout", chk_tensor_layout),
            ("threads", chk_u64_pos),
            ("seed", chk_u64),
        ],
        WorkloadKind::Spmv => &[
            ("n", chk_u64_pos),
            ("layout", chk_spmv_layout),
            ("grain", chk_u64_pos),
        ],
        WorkloadKind::Script => &[],
    }
}

fn check_workload_key(kind: WorkloadKind, key: &str, val: &str) -> Result<(), String> {
    match workload_schema(kind).iter().find(|(k, _)| *k == key) {
        Some((_, chk)) => chk(val),
        None => Err(format!(
            "unknown {} parameter {key:?}; one of: {}",
            kind.name(),
            workload_schema(kind)
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Validate one sweep value for `axis_key` in the context of `kind`.
fn check_axis_value(kind: WorkloadKind, axis_key: &str, val: &str) -> Result<(), String> {
    if let Some(k) = axis_key.strip_prefix("machine.") {
        check_machine_key(k, val)
    } else if let Some(k) = axis_key.strip_prefix("faults.") {
        check_fault_key(k, val)
    } else {
        check_workload_key(kind, axis_key, val)
    }
}

fn parse_f64(v: &str) -> Result<f64, String> {
    let x: f64 = v
        .parse()
        .map_err(|_| format!("expected a number, got {v:?}"))?;
    if !x.is_finite() {
        return Err(format!("non-finite number {v:?}"));
    }
    Ok(x)
}

fn parse_expect_line(line: &str) -> Result<Expect, String> {
    if let Some(rest) = line.strip_prefix("byte_identical_at_sim_threads") {
        let rest = rest
            .trim_start()
            .strip_prefix('=')
            .ok_or("expected '=' after byte_identical_at_sim_threads")?;
        let mut sim_threads = Vec::new();
        for tok in rest.split(',') {
            let tok = tok.trim();
            let n: usize = tok
                .parse()
                .map_err(|_| format!("bad sim-thread count {tok:?}"))?;
            if n == 0 || n > 64 {
                return Err(format!("sim-thread count {n} out of range 1..=64"));
            }
            sim_threads.push(n);
        }
        if sim_threads.len() < 2 {
            return Err("byte_identical_at_sim_threads needs at least two counts".into());
        }
        return Ok(Expect::ByteIdentical { sim_threads });
    }
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.as_slice() {
        ["counter", metric, op, value] => {
            if !METRICS.contains(metric) {
                return Err(format!("unknown metric {metric:?}"));
            }
            let op = CmpOp::from_name(op).ok_or_else(|| format!("unknown operator {op:?}"))?;
            Ok(Expect::Counter {
                metric: metric.to_string(),
                op,
                value: parse_f64(value)?,
            })
        }
        ["oracle", name, "in", band] => {
            if !ORACLES.contains(name) {
                return Err(format!("unknown oracle {name:?}"));
            }
            let (lo, hi) = band
                .split_once("..")
                .ok_or_else(|| format!("expected <lo>..<hi>, got {band:?}"))?;
            let (lo, hi) = (parse_f64(lo)?, parse_f64(hi)?);
            if lo > hi {
                return Err(format!("empty band {lo}..{hi}"));
            }
            Ok(Expect::Oracle {
                name: name.to_string(),
                lo,
                hi,
            })
        }
        ["monotonic", metric, dir, "over", axis] => {
            if !METRICS.contains(metric) {
                return Err(format!("unknown metric {metric:?}"));
            }
            let dir = Direction::from_name(dir)
                .ok_or_else(|| format!("unknown direction {dir:?} (nondecreasing|nonincreasing)"))?;
            Ok(Expect::Monotonic {
                metric: metric.to_string(),
                dir,
                axis: axis.to_string(),
            })
        }
        _ => Err(format!(
            "bad expect line {line:?} (counter | oracle | monotonic | byte_identical_at_sim_threads)"
        )),
    }
}

#[derive(PartialEq, Clone, Copy)]
enum Section {
    None,
    Machine,
    Workload,
    Faults,
    Expect,
}

/// Parse one `.scn` document. Every rejection names its line.
pub fn parse(text: &str) -> Result<Scenario, String> {
    let mut name: Option<String> = None;
    let mut preset: Option<String> = None;
    let mut machine_overrides: Vec<(String, String)> = Vec::new();
    let mut workload: Option<Workload> = None;
    let mut faults: Vec<(String, String)> = Vec::new();
    let mut sweep: Vec<Axis> = Vec::new();
    let mut expect: Vec<Expect> = Vec::new();
    let mut seen_faults = false;
    let mut seen_expect = false;
    let mut section = Section::None;

    for (i, raw) in text.lines().enumerate() {
        let ln = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let first = line.split_whitespace().next().unwrap();
        match first {
            "scenario" => {
                if name.is_some() {
                    return Err(err(ln, "duplicate scenario line"));
                }
                if preset.is_some() || workload.is_some() {
                    return Err(err(ln, "scenario line must come first"));
                }
                let n = line["scenario".len()..].trim();
                if !valid_name(n) {
                    return Err(err(ln, format!("bad scenario name {n:?}")));
                }
                name = Some(n.to_string());
                section = Section::None;
            }
            "machine" => {
                if preset.is_some() {
                    return Err(err(ln, "duplicate machine section"));
                }
                let p = line["machine".len()..].trim();
                emu_core::presets::by_name(p).map_err(|e| err(ln, e))?;
                preset = Some(p.to_string());
                section = Section::Machine;
            }
            "workload" => {
                if workload.is_some() {
                    return Err(err(ln, "duplicate workload section"));
                }
                let k = line["workload".len()..].trim();
                let kind = WorkloadKind::from_name(k).ok_or_else(|| {
                    err(
                        ln,
                        format!(
                            "unknown workload {k:?} (stream, chase, bfs, mttkrp, spmv, script)"
                        ),
                    )
                })?;
                workload = Some(Workload {
                    kind,
                    params: BTreeMap::new(),
                    threads: Vec::new(),
                });
                section = Section::Workload;
            }
            "faults" => {
                if seen_faults {
                    return Err(err(ln, "duplicate faults section"));
                }
                if line != "faults" {
                    return Err(err(ln, "faults section header takes no arguments"));
                }
                seen_faults = true;
                section = Section::Faults;
            }
            "sweep" => {
                let rest = line["sweep".len()..].trim();
                let (key, vals) = rest
                    .split_once('=')
                    .ok_or_else(|| err(ln, "expected: sweep <key> = v1, v2, …"))?;
                let key = key.trim();
                if key.is_empty() {
                    return Err(err(ln, "empty sweep key"));
                }
                if sweep.len() >= MAX_AXES {
                    return Err(err(ln, format!("at most {MAX_AXES} swept axes")));
                }
                if sweep.iter().any(|a| a.key == key) {
                    return Err(err(ln, format!("duplicate sweep axis {key:?}")));
                }
                let kind = workload
                    .as_ref()
                    .map(|w| w.kind)
                    .ok_or_else(|| err(ln, "sweep must come after the workload section"))?;
                let mut values = Vec::new();
                for v in vals.split(',') {
                    let v = v.trim();
                    if v.is_empty() {
                        return Err(err(ln, "empty sweep value"));
                    }
                    check_axis_value(kind, key, v).map_err(|e| err(ln, e))?;
                    values.push(v.to_string());
                }
                sweep.push(Axis {
                    key: key.to_string(),
                    values,
                });
                section = Section::None;
            }
            "expect" => {
                if seen_expect {
                    return Err(err(ln, "duplicate expect section"));
                }
                if line != "expect" {
                    return Err(err(ln, "expect section header takes no arguments"));
                }
                seen_expect = true;
                section = Section::Expect;
            }
            _ => match section {
                Section::None => {
                    return Err(err(ln, format!("unknown section or stray line {line:?}")))
                }
                Section::Expect => expect.push(parse_expect_line(line).map_err(|e| err(ln, e))?),
                Section::Machine | Section::Workload | Section::Faults => {
                    let (key, val) = line
                        .split_once('=')
                        .ok_or_else(|| err(ln, format!("expected key = value, got {line:?}")))?;
                    let (key, val) = (key.trim(), val.trim());
                    match section {
                        Section::Machine => {
                            check_machine_key(key, val).map_err(|e| err(ln, e))?;
                            if machine_overrides.iter().any(|(k, _)| k == key) {
                                return Err(err(ln, format!("duplicate machine key {key:?}")));
                            }
                            machine_overrides.push((key.to_string(), val.to_string()));
                        }
                        Section::Faults => {
                            check_fault_key(key, val).map_err(|e| err(ln, e))?;
                            if faults.iter().any(|(k, _)| k == key) {
                                return Err(err(ln, format!("duplicate fault key {key:?}")));
                            }
                            faults.push((key.to_string(), val.to_string()));
                        }
                        _ => {
                            let w = workload.as_mut().unwrap();
                            if key == "thread" {
                                if w.kind != WorkloadKind::Script {
                                    return Err(err(
                                        ln,
                                        "thread lines are only valid in a script workload",
                                    ));
                                }
                                w.threads.push(parse_thread(val).map_err(|e| err(ln, e))?);
                            } else {
                                check_workload_key(w.kind, key, val).map_err(|e| err(ln, e))?;
                                if w.params.contains_key(key) {
                                    return Err(err(
                                        ln,
                                        format!("duplicate workload parameter {key:?}"),
                                    ));
                                }
                                w.params.insert(key.to_string(), val.to_string());
                            }
                        }
                    }
                }
            },
        }
    }

    let name = name.ok_or("missing scenario line")?;
    let preset = preset.ok_or("missing machine section")?;
    let workload = workload.ok_or("missing workload section")?;
    if workload.kind == WorkloadKind::Script && workload.threads.is_empty() {
        return Err("script workload has no thread lines".into());
    }
    for e in &expect {
        if let Expect::Monotonic { axis, .. } = e {
            if !sweep.iter().any(|a| &a.key == axis) {
                return Err(format!("monotonic expect references unswept axis {axis:?}"));
            }
        }
    }
    let s = Scenario {
        name,
        preset,
        machine_overrides,
        workload,
        faults,
        sweep,
        expect,
    };
    // Dry-run the full resolution (machine builds, sweep expansion,
    // cross-key workload constraints) so a structurally valid file
    // with inconsistent semantics — nodes = 0 via override, a chase
    // whose list length is not a multiple of its block — fails at
    // parse time, not at run time.
    crate::resolve::resolve(&s)?;
    Ok(s)
}

/// Build the scenario's base [`MachineConfig`] (preset + machine
/// overrides + faults, no sweep applied) and validate it.
pub fn base_config(s: &Scenario) -> Result<MachineConfig, String> {
    let mut cfg = emu_core::presets::by_name(&s.preset)?;
    for (k, v) in &s.machine_overrides {
        apply_config_key(&mut cfg, k, v)?;
    }
    for (k, v) in &s.faults {
        apply_config_key(&mut cfg, &format!("fault_{k}"), v)?;
    }
    cfg.validate()?;
    Ok(cfg)
}

/// Render the canonical form of a scenario. `parse(print(s)) == s`.
pub fn print(s: &Scenario) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", s.name);
    let _ = writeln!(out);
    let _ = writeln!(out, "machine {}", s.preset);
    for (k, v) in &s.machine_overrides {
        let _ = writeln!(out, "  {k} = {v}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "workload {}", s.workload.kind.name());
    for (k, v) in &s.workload.params {
        let _ = writeln!(out, "  {k} = {v}");
    }
    for t in &s.workload.threads {
        let mut line = format!("  thread = {}", t.start);
        for op in &t.ops {
            line.push(' ');
            line.push_str(&op_token(op));
        }
        let _ = writeln!(out, "{line}");
    }
    if !s.faults.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "faults");
        for (k, v) in &s.faults {
            let _ = writeln!(out, "  {k} = {v}");
        }
    }
    if !s.sweep.is_empty() {
        let _ = writeln!(out);
        for a in &s.sweep {
            let _ = writeln!(out, "sweep {} = {}", a.key, a.values.join(", "));
        }
    }
    if !s.expect.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "expect");
        for e in &s.expect {
            let line = match e {
                Expect::Counter { metric, op, value } => {
                    format!("counter {metric} {} {value}", op.name())
                }
                Expect::Oracle { name, lo, hi } => format!("oracle {name} in {lo}..{hi}"),
                Expect::Monotonic { metric, dir, axis } => {
                    format!("monotonic {metric} {} over {axis}", dir.name())
                }
                Expect::ByteIdentical { sim_threads } => format!(
                    "byte_identical_at_sim_threads = {}",
                    sim_threads
                        .iter()
                        .map(|n| n.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            };
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}
