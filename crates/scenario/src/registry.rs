//! The deterministic generator behind the committed `scenarios/`
//! registry.
//!
//! `simctl scenario gen <dir>` writes [`files`] to disk; the committed
//! tree is asserted byte-identical to the generator's output by
//! `tests/registry.rs`, so the registry can never silently drift from
//! the code. Every machine preset is paired with every workload, the
//! enum-valued knobs (kernels, spawn strategies, shuffle modes,
//! layouts) are enumerated, sweeps carry monotonicity assertions,
//! fault plans carry recovery-counter assertions, and a byte-identity
//! group pins the PR 5 determinism invariant (identical reports at any
//! scheduler worker count) per preset and workload.
//!
//! Sizes are deliberately small: the whole registry is the default CI
//! conformance suite and must stay cheap enough to run on every push.

use crate::ast::*;
use conformance::fuzz::parse_thread;
use std::collections::BTreeMap;

/// The five machine presets, under their registry spellings.
pub const PRESETS: [&str; 5] = ["chick", "chick-sim", "full-speed", "emu64", "chick-8node"];

/// Single-node presets that need a `nodes` override before inter-node
/// link faults can fire.
const SINGLE_NODE: [&str; 3] = ["chick", "chick-sim", "full-speed"];

struct B {
    s: Scenario,
}

fn b(name: String, preset: &str, kind: WorkloadKind) -> B {
    B {
        s: Scenario {
            name,
            preset: preset.to_string(),
            machine_overrides: Vec::new(),
            workload: Workload {
                kind,
                params: BTreeMap::new(),
                threads: Vec::new(),
            },
            faults: Vec::new(),
            sweep: Vec::new(),
            expect: Vec::new(),
        },
    }
}

impl B {
    fn p(mut self, k: &str, v: impl ToString) -> B {
        self.s.params_insert(k, v.to_string());
        self
    }
    fn ov(mut self, k: &str, v: impl ToString) -> B {
        self.s.machine_overrides.push((k.into(), v.to_string()));
        self
    }
    fn fault(mut self, k: &str, v: impl ToString) -> B {
        self.s.faults.push((k.into(), v.to_string()));
        self
    }
    fn sweep(mut self, key: &str, vals: &[&str]) -> B {
        self.s.sweep.push(Axis {
            key: key.into(),
            values: vals.iter().map(|v| v.to_string()).collect(),
        });
        self
    }
    fn counter(mut self, metric: &str, op: CmpOp, value: f64) -> B {
        self.s.expect.push(Expect::Counter {
            metric: metric.into(),
            op,
            value,
        });
        self
    }
    fn oracle(mut self, name: &str, lo: f64, hi: f64) -> B {
        self.s.expect.push(Expect::Oracle {
            name: name.into(),
            lo,
            hi,
        });
        self
    }
    fn mono(mut self, metric: &str, dir: Direction, axis: &str) -> B {
        self.s.expect.push(Expect::Monotonic {
            metric: metric.into(),
            dir,
            axis: axis.into(),
        });
        self
    }
    fn byte_identical(mut self, counts: &[usize]) -> B {
        self.s.expect.push(Expect::ByteIdentical {
            sim_threads: counts.to_vec(),
        });
        self
    }
    fn thread(mut self, spec: &str) -> B {
        self.s
            .workload
            .threads
            .push(parse_thread(spec).expect("registry thread specs are valid"));
        self
    }
    /// Baseline liveness assertions every scenario carries.
    fn alive(self) -> B {
        self.counter("threads", CmpOp::Ge, 1.0)
            .counter("events", CmpOp::Ge, 1.0)
    }
    fn build(self) -> Scenario {
        self.s
    }
}

impl Scenario {
    fn params_insert(&mut self, k: &str, v: String) {
        self.workload.params.insert(k.to_string(), v);
    }
}

/// Small default geometries per workload — cheap enough that the whole
/// registry runs as the everyday conformance suite.
fn stream(name: String, preset: &str) -> B {
    b(name, preset, WorkloadKind::Stream)
        .p("elems", 1024)
        .p("threads", 32)
}

fn chase(name: String, preset: &str) -> B {
    b(name, preset, WorkloadKind::Chase)
        .p("elems_per_list", 256)
        .p("lists", 4)
        .p("block", 16)
}

fn bfs(name: String, preset: &str) -> B {
    b(name, preset, WorkloadKind::Bfs)
        .p("scale", 6)
        .p("edges", 256)
        .p("threads", 16)
}

fn mttkrp(name: String, preset: &str) -> B {
    b(name, preset, WorkloadKind::Mttkrp)
        .p("i", 8)
        .p("j", 6)
        .p("k", 6)
        .p("nnz", 80)
        .p("rank", 3)
        .p("threads", 24)
}

fn spmv(name: String, preset: &str) -> B {
    b(name, preset, WorkloadKind::Spmv).p("n", 8)
}

/// Two root threadlets touching both home nodelets — the smallest
/// script that still spawns, loads, stores, and migrates.
fn script(name: String, preset: &str) -> B {
    b(name, preset, WorkloadKind::Script)
        .thread("0 L0:8 C5 S1:8")
        .thread("1 L1:8 M0 C3")
}

/// Generate the whole registry, in a stable order with unique names.
pub fn generate() -> Vec<Scenario> {
    let mut out: Vec<Scenario> = Vec::new();

    // -- A: every preset x every workload family ----------------------
    for preset in PRESETS {
        out.push(
            stream(format!("base-stream-{preset}"), preset)
                .alive()
                .counter("bandwidth_bps", CmpOp::Gt, 0.0)
                .counter("bytes", CmpOp::Ge, 24.0 * 1024.0)
                .build(),
        );
        out.push(
            chase(format!("base-chase-{preset}"), preset)
                .alive()
                .counter("bandwidth_bps", CmpOp::Gt, 0.0)
                .counter("threads", CmpOp::Ge, 4.0)
                .build(),
        );
        out.push(
            bfs(format!("base-bfs-{preset}"), preset)
                .alive()
                .counter("edges_traversed", CmpOp::Ge, 1.0)
                .counter("depth", CmpOp::Ge, 1.0)
                .build(),
        );
        out.push(
            mttkrp(format!("base-mttkrp-{preset}"), preset)
                .alive()
                .counter("bandwidth_bps", CmpOp::Gt, 0.0)
                .build(),
        );
        out.push(
            spmv(format!("base-spmv-{preset}"), preset)
                .alive()
                .counter("bandwidth_bps", CmpOp::Gt, 0.0)
                .build(),
        );
        out.push(
            script(format!("base-script-{preset}"), preset)
                .counter("threads", CmpOp::Eq, 2.0)
                .counter("events", CmpOp::Ge, 1.0)
                .build(),
        );
    }

    // -- B: STREAM kernels --------------------------------------------
    for preset in PRESETS {
        for kernel in ["add", "copy", "scale", "triad"] {
            out.push(
                stream(format!("stream-kernel-{kernel}-{preset}"), preset)
                    .p("kernel", kernel)
                    .alive()
                    .counter("bandwidth_bps", CmpOp::Gt, 0.0)
                    .build(),
            );
        }
    }

    // -- C: STREAM spawn strategies (the Fig 4/5 axis) ----------------
    for preset in PRESETS {
        for strategy in ["serial", "recursive", "serial-remote", "recursive-remote"] {
            out.push(
                stream(format!("stream-strategy-{strategy}-{preset}"), preset)
                    .p("strategy", strategy)
                    .alive()
                    .counter("spawns", CmpOp::Ge, 32.0)
                    .build(),
            );
        }
    }

    // -- D: STREAM confined to one nodelet (Fig 4) --------------------
    for preset in PRESETS {
        out.push(
            stream(format!("stream-single-nodelet-{preset}"), preset)
                .p("single_nodelet", 1)
                .p("threads", 8)
                .alive()
                .build(),
        );
    }

    // -- E: chase shuffle modes (Fig 2) -------------------------------
    for preset in PRESETS {
        for mode in ["ordered", "intra-block", "block-shuffle", "full-block"] {
            out.push(
                chase(format!("chase-mode-{mode}-{preset}"), preset)
                    .p("mode", mode)
                    .alive()
                    .counter("bytes", CmpOp::Ge, (256 * 4 * 16) as f64)
                    .build(),
            );
        }
    }

    // -- F: BFS traversal strategies ----------------------------------
    for preset in PRESETS {
        for mode in ["migrating", "remote-flags"] {
            out.push(
                bfs(format!("bfs-mode-{mode}-{preset}"), preset)
                    .p("mode", mode)
                    .alive()
                    .counter("edges_traversed", CmpOp::Ge, 1.0)
                    .build(),
            );
        }
    }

    // -- G: MTTKRP layouts --------------------------------------------
    for preset in PRESETS {
        for layout in ["1d", "slice-blocked"] {
            out.push(
                mttkrp(format!("mttkrp-layout-{layout}-{preset}"), preset)
                    .p("layout", layout)
                    .alive()
                    .build(),
            );
        }
    }

    // -- H: SpMV layouts (Fig 3) --------------------------------------
    for preset in PRESETS {
        for layout in ["local", "1d", "2d"] {
            out.push(
                spmv(format!("spmv-layout-{layout}-{preset}"), preset)
                    .p("layout", layout)
                    .alive()
                    .build(),
            );
        }
    }

    // -- I: sweeps with monotonicity ----------------------------------
    for preset in PRESETS {
        out.push(
            stream(format!("sweep-stream-elems-{preset}"), preset)
                .sweep("elems", &["256", "512", "1024"])
                .alive()
                .mono("events", Direction::NonDecreasing, "elems")
                .mono("bytes", Direction::NonDecreasing, "elems")
                .mono("makespan_ps", Direction::NonDecreasing, "elems")
                .build(),
        );
        out.push(
            chase(format!("sweep-chase-lists-{preset}"), preset)
                .sweep("lists", &["2", "4", "8"])
                .alive()
                .mono("events", Direction::NonDecreasing, "lists")
                .mono("bytes", Direction::NonDecreasing, "lists")
                .build(),
        );
        out.push(
            spmv(format!("sweep-spmv-n-{preset}"), preset)
                .sweep("n", &["6", "8", "10"])
                .alive()
                .mono("events", Direction::NonDecreasing, "n")
                .mono("bytes", Direction::NonDecreasing, "n")
                .build(),
        );
        out.push(
            stream(format!("sweep-stream-elems-kernel-{preset}"), preset)
                .sweep("elems", &["256", "512"])
                .sweep("kernel", &["add", "copy"])
                .alive()
                .mono("events", Direction::NonDecreasing, "elems")
                .build(),
        );
    }

    // -- J: byte-identity across scheduler worker counts --------------
    for preset in PRESETS {
        // The PR 5 invariant is the suite's strongest determinism
        // check; the flagship preset also pins four workers.
        let counts: &[usize] = if preset == "chick" {
            &[1, 2, 4]
        } else {
            &[1, 2]
        };
        out.push(
            stream(format!("ident-stream-{preset}"), preset)
                .p("elems", 512)
                .p("threads", 16)
                .alive()
                .byte_identical(counts)
                .build(),
        );
        out.push(
            chase(format!("ident-chase-{preset}"), preset)
                .p("elems_per_list", 128)
                .p("lists", 4)
                .alive()
                .byte_identical(counts)
                .build(),
        );
        out.push(
            mttkrp(format!("ident-mttkrp-{preset}"), preset)
                .p("nnz", 48)
                .alive()
                .byte_identical(counts)
                .build(),
        );
        out.push(
            spmv(format!("ident-spmv-{preset}"), preset)
                .p("n", 6)
                .alive()
                .byte_identical(counts)
                .build(),
        );
        out.push(
            script(format!("ident-script-{preset}"), preset)
                .counter("threads", CmpOp::Eq, 2.0)
                .byte_identical(counts)
                .build(),
        );
    }

    // -- K: seeded fault plans with recovery-counter assertions -------
    for preset in PRESETS {
        out.push(
            chase(format!("fault-mig-nack-chase-{preset}"), preset)
                .fault("seed", 7)
                .fault("mig_nack_prob", "0.25")
                .fault("mig_backoff_ps", 200_000)
                .fault("mig_retry_budget", 32)
                .alive()
                .counter("nacks", CmpOp::Ge, 1.0)
                .counter("retries", CmpOp::Ge, 1.0)
                .build(),
        );
        out.push(
            stream(format!("fault-mig-nack-stream-{preset}"), preset)
                .p("strategy", "serial")
                .fault("seed", 11)
                .fault("mig_nack_prob", "0.2")
                .fault("mig_backoff_ps", 150_000)
                .fault("mig_retry_budget", 32)
                .alive()
                .counter("nacks", CmpOp::Ge, 1.0)
                .build(),
        );
        out.push(
            stream(format!("fault-ecc-stream-{preset}"), preset)
                .fault("seed", 13)
                .fault("ecc_prob", "0.2")
                .fault("ecc_latency_ps", 100_000)
                .alive()
                .counter("ecc_retries", CmpOp::Ge, 1.0)
                .build(),
        );
        out.push(
            spmv(format!("fault-ecc-spmv-{preset}"), preset)
                .fault("seed", 17)
                .fault("ecc_prob", "0.15")
                .fault("ecc_latency_ps", 80_000)
                .alive()
                .counter("ecc_retries", CmpOp::Ge, 1.0)
                .build(),
        );
        let mut link = stream(format!("fault-link-stream-{preset}"), preset)
            .fault("seed", 19)
            .fault("link_drop_prob", "0.2")
            .fault("link_retry_budget", 32);
        if SINGLE_NODE.contains(&preset) {
            link = link.ov("nodes", 2);
        }
        out.push(
            link.alive()
                .counter("link_retransmits", CmpOp::Ge, 1.0)
                .build(),
        );
        out.push(
            chase(format!("fault-dead-nodelet-chase-{preset}"), preset)
                .fault("seed", 23)
                .fault("dead", "0,1")
                .alive()
                .counter("redirects", CmpOp::Ge, 1.0)
                .build(),
        );
    }

    // -- L: closed-form performance oracles ---------------------------
    // Only the presets whose oracle bands are pinned by the
    // conformance tests; the bands repeat `conformance::oracle`'s own.
    for preset in ["chick", "chick-sim"] {
        out.push(
            stream(format!("oracle-stream-saturated-{preset}"), preset)
                .p("elems", 256)
                .p("threads", 8)
                .alive()
                .oracle("stream-saturated", 0.95, 1.02)
                .build(),
        );
        out.push(
            stream(format!("oracle-stream-single-thread-{preset}"), preset)
                .p("elems", 256)
                .p("threads", 8)
                .alive()
                .oracle("stream-single-thread", 0.98, 1.02)
                .build(),
        );
        out.push(
            stream(format!("oracle-migration-ceiling-{preset}"), preset)
                .p("elems", 256)
                .p("threads", 8)
                .alive()
                .oracle("migration-ceiling", 0.95, 1.01)
                .build(),
        );
        out.push(
            stream(format!("oracle-channel-peak-{preset}"), preset)
                .p("elems", 256)
                .p("threads", 8)
                .alive()
                .oracle("channel-peak", 0.97, 1.01)
                .build(),
        );
    }

    // -- M: script edge cases (all on the flagship preset) ------------
    let scripts: &[(&str, &[&str])] = &[
        ("single-thread-local", &["0 L0:8 C5 S0:8"]),
        ("single-thread-remote", &["0 L7:8 C5 S7:8"]),
        ("migrate-ping-pong", &["0 M1 M0 M1 M0 C2"]),
        (
            "atomic-contention",
            &["0 A3:8 A3:8", "1 A3:8 A3:8", "2 A3:8 A3:8"],
        ),
        (
            "remote-stores-fan-in",
            &["0 S4:8", "1 S4:8", "2 S4:8", "3 S4:8"],
        ),
        ("compute-only", &["0 C50", "1 C50"]),
        ("load-chain-across-nodelets", &["0 L1:8 L2:8 L3:8 L4:8"]),
        ("wide-loads", &["0 L0:64 L1:64", "1 L2:64 L3:64"]),
        ("store-then-load-same", &["0 S5:8 L5:8 C3"]),
        ("migrate-then-work", &["0 M6 L6:8 S6:8 C4"]),
        ("two-threads-same-home", &["2 L2:8 C3", "2 S2:8 C3"]),
        (
            "mixed-op-soup",
            &["0 L1:8 A2:8 C7 M3 S3:8", "1 S0:8 C2 L0:8"],
        ),
        ("max-nodelet-targets", &["0 L7:8 S7:8 A7:8"]),
        ("empty-thread-body", &["0", "1 C1"]),
        (
            "atomics-across-all",
            &["0 A0:8 A1:8 A2:8 A3:8 A4:8 A5:8 A6:8 A7:8"],
        ),
    ];
    for (tag, threads) in scripts {
        let mut sb = b(format!("script-{tag}-chick"), "chick", WorkloadKind::Script);
        for t in *threads {
            sb = sb.thread(t);
        }
        out.push(
            sb.counter("threads", CmpOp::Eq, threads.len() as f64)
                .counter("events", CmpOp::Ge, 1.0)
                .build(),
        );
    }

    // -- N: scripts under fault plans (lockstep harness + faults) -----
    // (tag, fault key/value overrides, script thread programs)
    type FaultScript<'a> = (&'a str, &'a [(&'a str, &'a str)], &'a [&'a str]);
    let fault_scripts: &[FaultScript] = &[
        (
            "nack",
            &[
                ("seed", "31"),
                ("mig_nack_prob", "0.5"),
                ("mig_backoff_ps", "100000"),
                ("mig_retry_budget", "64"),
            ],
            &["0 M1 M2 M3 M4 C2", "1 M0 M5 C2"],
        ),
        (
            "ecc",
            &[
                ("seed", "37"),
                ("ecc_prob", "0.5"),
                ("ecc_latency_ps", "50000"),
            ],
            &["0 L1:8 L2:8 L3:8 S1:8", "1 L0:8 S0:8"],
        ),
        (
            "dead-redirect",
            &[("seed", "41"), ("dead", "0,0,1")],
            &["0 L2:8 S2:8 C3", "1 M2 C3"],
        ),
        (
            "slowdown",
            &[("seed", "43"), ("slowdown", "1.0,4.0")],
            &["0 L1:8 S1:8 C5", "1 L0:8 C5"],
        ),
        (
            "nack-and-ecc",
            &[
                ("seed", "47"),
                ("mig_nack_prob", "0.3"),
                ("mig_backoff_ps", "100000"),
                ("mig_retry_budget", "64"),
                ("ecc_prob", "0.3"),
                ("ecc_latency_ps", "50000"),
            ],
            &["0 M1 L1:8 M2 S2:8", "1 L3:8 M3 C4"],
        ),
    ];
    for (tag, faults, threads) in fault_scripts {
        let mut sb = b(
            format!("script-fault-{tag}-chick"),
            "chick",
            WorkloadKind::Script,
        );
        for (k, v) in *faults {
            sb = sb.fault(k, v);
        }
        for t in *threads {
            sb = sb.thread(t);
        }
        out.push(
            sb.counter("threads", CmpOp::Eq, threads.len() as f64)
                .counter("events", CmpOp::Ge, 1.0)
                .build(),
        );
    }

    let mut names = std::collections::BTreeSet::new();
    for s in &out {
        assert!(
            names.insert(s.name.clone()),
            "duplicate scenario name {}",
            s.name
        );
    }
    out
}

/// The registry as `(file name, canonical text)` pairs.
pub fn files() -> Vec<(String, String)> {
    generate()
        .iter()
        .map(|s| (format!("{}.scn", s.name), crate::parse::print(s)))
        .collect()
}
