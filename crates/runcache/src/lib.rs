//! Content-addressed result cache for deterministic simulation runs.
//!
//! Every run in this workspace is byte-identical given the same
//! resolved inputs, so a finished result can be keyed by a digest of
//! those inputs and replayed from disk instead of re-simulated. This
//! crate owns the three pieces that makes that safe:
//!
//! - [`Key`]: a canonical digest builder. Callers feed it the fully
//!   *resolved* run recipe (machine config, workload, seed, fault
//!   plan — everything that affects output, nothing that doesn't) as
//!   named records; the digest is SHA-256 over a length-prefixed
//!   encoding plus a version salt, so an engine-semantics change bumps
//!   [`KEY_VERSION`] and invalidates every old entry at once.
//! - [`Store`]: the on-disk object store (`.emu-cache/` by default,
//!   `EMU_CACHE_DIR` override) with atomic tmp+rename writes, an
//!   advisory `index.jsonl`, and mtime-ordered [`Store::gc`].
//! - module-level [`lookup`]/[`publish`]: the gate the execution paths
//!   call. They no-op unless caching is enabled (`EMU_CACHE=1` or
//!   [`set_enabled`]) and they keep the session hit/miss/store
//!   counters, mirrored into the `emu_core::obs` registry so the
//!   daemon's metrics endpoints pick them up automatically.
//!
//! The cache stores *rendered results* (report JSON, CSV cell text,
//! point-outcome JSON), not engine state; entries carry an optional
//! `recipe` string so `simctl cache verify` can re-run a sample from
//! scratch and byte-compare.

pub mod sha256;

use emu_core::json::jstr;
use emu_core::jsonread;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Version salt mixed into every digest. Bump when engine semantics
/// change in a way that alters outputs for unchanged inputs.
pub const KEY_VERSION: &str = "emu-runcache-v1";

/// Default store directory (relative to the working directory) when
/// `EMU_CACHE_DIR` is unset and no programmatic override is in force.
pub const DEFAULT_DIR: &str = ".emu-cache";

// ---------------------------------------------------------------------------
// Canonical key
// ---------------------------------------------------------------------------

/// Builder for a canonical content digest.
///
/// Records are length-prefixed (`name:len:value\n`) so multi-line
/// values — scenario sources, debug dumps — cannot collide with a
/// differently-split sequence of records. Push records in a fixed
/// order; the caller is responsible for feeding *resolved* values
/// (post-preset, post-override) so that semantically equal inputs
/// produce identical material.
#[derive(Debug, Clone)]
pub struct Key {
    material: String,
}

impl Key {
    /// Start a key for one kind of cached artifact ("figure", "scn",
    /// "simd-case", ...). The kind partitions the digest space.
    pub fn new(kind: &str) -> Key {
        let mut k = Key {
            material: String::with_capacity(256),
        };
        k.record("version", KEY_VERSION);
        k.record("kind", kind);
        k
    }

    /// Append one named record.
    pub fn record(&mut self, name: &str, value: &str) -> &mut Key {
        use std::fmt::Write;
        let _ = writeln!(self.material, "{name}:{}:{value}", value.len());
        self
    }

    /// Append a record rendered through `Debug` — the workspace's
    /// canonical stable encoding for config structs (f64 renders as
    /// shortest-round-trip, containers in declaration/key order).
    pub fn record_debug(&mut self, name: &str, value: &impl std::fmt::Debug) -> &mut Key {
        self.record(name, &format!("{value:?}"))
    }

    /// The canonical material fed to the hash (for tests/debugging).
    pub fn material(&self) -> &str {
        &self.material
    }

    /// The content digest: 64 hex chars of SHA-256 over the material.
    pub fn digest(&self) -> String {
        sha256::hex_digest(self.material.as_bytes())
    }
}

// ---------------------------------------------------------------------------
// Entry codec
// ---------------------------------------------------------------------------

/// One cached artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Artifact kind — matches the `Key::new` kind that addressed it.
    pub kind: String,
    /// Human-readable label ("fig bandwidth chick", scenario name, ...).
    pub label: String,
    /// The rendered result: report JSON, CSV cell text, outcome JSON.
    pub payload: String,
    /// Re-run recipe for `cache verify`; `None` when the artifact
    /// cannot be reproduced from a self-contained recipe string.
    pub recipe: Option<String>,
}

impl Entry {
    /// Serialize to the on-disk JSON document.
    pub fn encode(&self) -> String {
        let recipe = match &self.recipe {
            Some(r) => jstr(r),
            None => "null".to_string(),
        };
        format!(
            "{{\"v\":1,\"kind\":{},\"label\":{},\"payload\":{},\"recipe\":{}}}\n",
            jstr(&self.kind),
            jstr(&self.label),
            jstr(&self.payload),
            recipe
        )
    }

    /// Parse an on-disk document; rejects unknown versions.
    pub fn decode(text: &str) -> Result<Entry, String> {
        let v = jsonread::parse(text)?;
        let version = v.get("v").and_then(|x| x.as_u64()).ok_or("missing v")?;
        if version != 1 {
            return Err(format!("unsupported entry version {version}"));
        }
        let field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missing {name}"))
        };
        let recipe = match v.get("recipe") {
            Some(jsonread::Value::Null) | None => None,
            Some(r) => Some(r.as_str().ok_or("recipe must be a string")?.to_string()),
        };
        Ok(Entry {
            kind: field("kind")?,
            label: field("label")?,
            payload: field("payload")?,
            recipe,
        })
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Metadata for one object file, from a directory scan.
#[derive(Debug, Clone)]
pub struct ObjInfo {
    /// Content digest (the file stem).
    pub digest: String,
    /// Object file size in bytes.
    pub bytes: u64,
    /// Last-modified time, for gc ordering.
    pub mtime: std::time::SystemTime,
}

/// Result of a [`Store::gc`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcResult {
    /// Objects deleted.
    pub removed: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Objects surviving.
    pub kept: usize,
    /// Bytes surviving.
    pub kept_bytes: u64,
}

/// The on-disk object store. Layout:
///
/// ```text
/// <root>/objects/<digest>.json   one Entry per object, atomic writes
/// <root>/index.jsonl             advisory append log (rebuilt by gc)
/// ```
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open the store at an explicit root.
    pub fn at(root: impl Into<PathBuf>) -> Store {
        Store { root: root.into() }
    }

    /// Open the configured store: programmatic override, else
    /// `EMU_CACHE_DIR`, else [`DEFAULT_DIR`].
    pub fn open_default() -> Store {
        Store::at(resolve_dir())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn objects(&self) -> PathBuf {
        self.root.join("objects")
    }

    fn object_path(&self, digest: &str) -> PathBuf {
        self.objects().join(format!("{digest}.json"))
    }

    /// Load an entry by digest. Pure I/O — no counters, no enablement
    /// gate (that lives in the module-level [`lookup`]).
    pub fn load(&self, digest: &str) -> Option<Entry> {
        let text = std::fs::read_to_string(self.object_path(digest)).ok()?;
        Entry::decode(&text).ok()
    }

    /// Persist an entry under `digest`, atomically (unique tmp file in
    /// the same directory, then rename). Returns bytes written.
    pub fn save(&self, digest: &str, entry: &Entry) -> std::io::Result<u64> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = self.objects();
        std::fs::create_dir_all(&dir)?;
        let doc = entry.encode();
        let tmp = dir.join(format!(
            ".tmp-{}-{}-{digest}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &doc)?;
        let dest = self.object_path(digest);
        std::fs::rename(&tmp, &dest).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        // Advisory index line; best-effort (the objects dir is the
        // source of truth — stats and gc scan it directly).
        let line = format!(
            "{{\"digest\":{},\"kind\":{},\"label\":{},\"bytes\":{}}}\n",
            jstr(digest),
            jstr(&entry.kind),
            jstr(&entry.label),
            doc.len()
        );
        let _ = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.root.join("index.jsonl"))
            .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
        Ok(doc.len() as u64)
    }

    /// Enumerate object files (digest, size, mtime). Tmp leftovers and
    /// non-`.json` files are skipped.
    pub fn scan(&self) -> Vec<ObjInfo> {
        let Ok(rd) = std::fs::read_dir(self.objects()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for e in rd.flatten() {
            let path = e.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.starts_with('.') || path.extension().is_none_or(|x| x != "json") {
                continue;
            }
            let Ok(md) = e.metadata() else { continue };
            out.push(ObjInfo {
                digest: stem.to_string(),
                bytes: md.len(),
                mtime: md.modified().unwrap_or(std::time::UNIX_EPOCH),
            });
        }
        out.sort_by(|a, b| a.digest.cmp(&b.digest));
        out
    }

    /// Evict oldest-first (by mtime, digest as tiebreak) until total
    /// object bytes fit within `max_bytes`, then rebuild the index from
    /// the survivors.
    pub fn gc(&self, max_bytes: u64) -> GcResult {
        let mut objs = self.scan();
        objs.sort_by(|a, b| a.mtime.cmp(&b.mtime).then(a.digest.cmp(&b.digest)));
        let mut total: u64 = objs.iter().map(|o| o.bytes).sum();
        let mut res = GcResult::default();
        let mut removed = std::collections::BTreeSet::new();
        for o in &objs {
            if total <= max_bytes {
                break;
            }
            if std::fs::remove_file(self.object_path(&o.digest)).is_ok() {
                total -= o.bytes;
                res.removed += 1;
                res.freed_bytes += o.bytes;
                removed.insert(o.digest.clone());
            }
        }
        res.kept = objs.len() - res.removed;
        res.kept_bytes = total;
        if res.removed > 0 {
            self.rebuild_index(&removed);
        }
        res
    }

    /// Drop index lines whose digest was evicted (textual filter over
    /// the advisory log; losing the whole index is harmless).
    fn rebuild_index(&self, removed: &std::collections::BTreeSet<String>) {
        let path = self.root.join("index.jsonl");
        let Ok(text) = std::fs::read_to_string(&path) else {
            return;
        };
        let kept: String = text
            .lines()
            .filter(|line| {
                jsonread::parse(line)
                    .ok()
                    .and_then(|v| v.get("digest").and_then(|d| d.as_str().map(str::to_string)))
                    .is_none_or(|d| !removed.contains(&d))
            })
            .map(|l| format!("{l}\n"))
            .collect();
        let _ = std::fs::write(&path, kept);
    }
}

// ---------------------------------------------------------------------------
// Enablement + configured directory
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_ENABLED: OnceLock<bool> = OnceLock::new();

/// Whether the cache is armed: [`set_enabled`]`(true)` or `EMU_CACHE=1`
/// in the environment. Off by default — a cold process never touches
/// the filesystem unless something opted in.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
        || *ENV_ENABLED.get_or_init(|| {
            std::env::var("EMU_CACHE").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        })
}

/// Arm or disarm the cache for this process (beats the env default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn dir_override() -> &'static Mutex<Option<PathBuf>> {
    static DIR: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    DIR.get_or_init(|| Mutex::new(None))
}

/// Programmatically pin the store directory (beats `EMU_CACHE_DIR`).
/// `None` restores env/default resolution. Mainly for tests and
/// embedding; CLI users set the env var.
pub fn set_dir(dir: Option<&Path>) {
    *dir_override().lock().unwrap_or_else(|e| e.into_inner()) = dir.map(Path::to_path_buf);
}

/// The directory the default store resolves to right now.
pub fn resolve_dir() -> PathBuf {
    if let Some(d) = dir_override()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
    {
        return d;
    }
    match std::env::var_os("EMU_CACHE_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(DEFAULT_DIR),
    }
}

// ---------------------------------------------------------------------------
// Session counters + gated lookup/publish
// ---------------------------------------------------------------------------

/// This process's cache traffic (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Lookups that found a usable entry.
    pub hits: u64,
    /// Lookups that missed (or found an undecodable entry).
    pub misses: u64,
    /// Entries written.
    pub stores: u64,
    /// Total bytes written.
    pub bytes_written: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

struct ObsMirror {
    hits: &'static emu_core::obs::Counter,
    misses: &'static emu_core::obs::Counter,
    stores: &'static emu_core::obs::Counter,
    bytes: &'static emu_core::obs::Counter,
}

fn obs_mirror() -> &'static ObsMirror {
    static M: OnceLock<ObsMirror> = OnceLock::new();
    M.get_or_init(|| ObsMirror {
        hits: emu_core::obs::counter("emu_cache_hits_total"),
        misses: emu_core::obs::counter("emu_cache_misses_total"),
        stores: emu_core::obs::counter("emu_cache_stores_total"),
        bytes: emu_core::obs::counter("emu_cache_bytes_written_total"),
    })
}

/// Current session counters.
pub fn session_stats() -> SessionStats {
    SessionStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
        bytes_written: BYTES.load(Ordering::Relaxed),
    }
}

/// Look up a digest in the configured store. Returns `None` without
/// touching disk or counters when the cache is disabled; otherwise
/// counts one hit or miss.
pub fn lookup(digest: &str) -> Option<Entry> {
    if !enabled() {
        return None;
    }
    match Store::open_default().load(digest) {
        Some(e) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            obs_mirror().hits.inc();
            Some(e)
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            obs_mirror().misses.inc();
            None
        }
    }
}

/// Persist an entry in the configured store. Best-effort: a write
/// failure is swallowed (the run already has its result in hand), but
/// successful writes count toward the store/bytes counters.
pub fn publish(digest: &str, entry: &Entry) {
    if !enabled() {
        return;
    }
    if let Ok(n) = Store::open_default().save(digest, entry) {
        STORES.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(n, Ordering::Relaxed);
        let m = obs_mirror();
        m.stores.inc();
        m.bytes.add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "runcache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("mk tmpdir");
        d
    }

    #[test]
    fn key_material_is_length_prefixed_and_salted() {
        let mut k = Key::new("figure");
        k.record("cfg", "a=1").record("seed", "42");
        assert!(k.material().starts_with(&format!(
            "version:{}:{KEY_VERSION}\nkind:6:figure\n",
            KEY_VERSION.len()
        )));
        assert!(k.material().contains("cfg:3:a=1\nseed:2:42\n"));
        assert_eq!(k.digest().len(), 64);
    }

    #[test]
    fn key_records_cannot_collide_across_boundaries() {
        // "ab" + "c" must differ from "a" + "bc" — length prefixes
        // make the concatenation injective.
        let mut k1 = Key::new("t");
        k1.record("x", "ab").record("y", "c");
        let mut k2 = Key::new("t");
        k2.record("x", "a").record("y", "bc");
        assert_ne!(k1.digest(), k2.digest());
    }

    #[test]
    fn kind_partitions_digest_space() {
        let mut a = Key::new("figure");
        a.record("cfg", "same");
        let mut b = Key::new("scn");
        b.record("cfg", "same");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn entry_codec_round_trips() {
        let e = Entry {
            kind: "scn".into(),
            label: "stream \"quoted\" λ".into(),
            payload: "{\"metrics\":{\"x\":1.5}}\nline2".into(),
            recipe: Some("case:v1 seed=9".into()),
        };
        let doc = e.encode();
        assert!(emu_core::json::json_ok(doc.trim_end()));
        assert_eq!(Entry::decode(&doc).unwrap(), e);

        let none = Entry {
            recipe: None,
            ..e.clone()
        };
        assert_eq!(Entry::decode(&none.encode()).unwrap(), none);
    }

    #[test]
    fn store_save_load_scan() {
        let dir = tmpdir("store");
        let store = Store::at(&dir);
        let e = Entry {
            kind: "figure".into(),
            label: "cell".into(),
            payload: "12.5".into(),
            recipe: None,
        };
        let digest = Key::new("figure").record("p", "x").digest();
        assert!(store.load(&digest).is_none());
        let n = store.save(&digest, &e).expect("save");
        assert!(n > 0);
        assert_eq!(store.load(&digest).unwrap(), e);
        let objs = store.scan();
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].digest, digest);
        assert_eq!(objs[0].bytes, n);
        // Index got an advisory line.
        let idx = std::fs::read_to_string(dir.join("index.jsonl")).unwrap();
        assert!(idx.contains(&digest));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_evicts_oldest_until_under_budget() {
        let dir = tmpdir("gc");
        let store = Store::at(&dir);
        let mut digests = Vec::new();
        for i in 0..4 {
            let e = Entry {
                kind: "t".into(),
                label: format!("obj{i}"),
                payload: "x".repeat(100),
                recipe: None,
            };
            let d = Key::new("t").record("i", &i.to_string()).digest();
            store.save(&d, &e).unwrap();
            digests.push(d);
            // Distinct mtimes so eviction order is deterministic.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let total: u64 = store.scan().iter().map(|o| o.bytes).sum();
        let per = total / 4;
        let res = store.gc(per * 2);
        assert_eq!(res.removed, 2);
        assert_eq!(res.kept, 2);
        assert!(res.kept_bytes <= per * 2);
        // The two oldest are gone, the two newest survive.
        assert!(store.load(&digests[0]).is_none());
        assert!(store.load(&digests[1]).is_none());
        assert!(store.load(&digests[2]).is_some());
        assert!(store.load(&digests[3]).is_some());
        // Index was rebuilt to drop evicted digests.
        let idx = std::fs::read_to_string(dir.join("index.jsonl")).unwrap();
        assert!(!idx.contains(&digests[0]));
        assert!(idx.contains(&digests[3]));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_lookup_is_inert() {
        // Cache is off by default in tests; lookup must not count.
        assert!(!ENABLED.load(Ordering::Relaxed));
        let before = session_stats();
        assert!(
            lookup("0000000000000000000000000000000000000000000000000000000000000000").is_none()
        );
        publish(
            "0000000000000000000000000000000000000000000000000000000000000000",
            &Entry {
                kind: "t".into(),
                label: "t".into(),
                payload: String::new(),
                recipe: None,
            },
        );
        assert_eq!(session_stats(), before);
    }
}
